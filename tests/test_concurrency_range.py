"""Tests for the concurrency-safety (R060–R066) and value-range
(R070–R074) packs.

Each rule gets a seeded firing fixture and a clean fixture; the
archetypal cases from the issue — an unlocked shared counter reachable
from handler threads (R060, witness chain asserted) and an int64
product exceeding 2**63 over the declared spec bounds (R070) — are
covered explicitly, plus the SARIF round-trip for both packs and the
``--packs`` / ``--changed-files`` selection modes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.cli import main
from repro.report.diagnostics import validate_sarif_payload
from repro.report.sarif import FINGERPRINT_KEY, sarif_payload

from .test_interproc import active_codes, mini_project


# ----------------------------------------------------------------------
# R060 — unlocked shared-state writes under multiple thread contexts
# ----------------------------------------------------------------------


def test_r060_fires_on_unlocked_counter_from_handler(tmp_path: Path) -> None:
    """The seeded race: handler threads bump a shared counter unlocked."""
    root = mini_project(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/counts.py": (
                "class Stats:\n"
                "    def __init__(self):\n"
                "        self.hits = 0\n"
                "    def bump(self):\n"
                "        self.hits += 1\n"
                "stats = Stats()\n"
                "def record():\n"
                "    stats.bump()\n"
            ),
            "pkg/srv.py": (
                "from pkg.counts import record\n"
                "def handle_status(request):\n"
                "    record()\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r060 = [f for f in report if f.code == "R060" and f.active]
    assert r060, "unlocked shared counter under handler threads must fire"
    (finding,) = [f for f in r060 if "self.hits" in f.message]
    assert "handle_status" in finding.message, "witness root missing"
    assert "->" in finding.message, "witness call chain missing"
    assert "bump" in finding.message


def test_r060_fires_on_pool_client_lambda_thunks(tmp_path: Path) -> None:
    """Load-generator shape: ThreadPoolExecutor lambda thunks race."""
    root = mini_project(
        tmp_path,
        {
            "pkg/gen.py": (
                "from concurrent.futures import ThreadPoolExecutor\n"
                "results = {}\n"
                "def work(job):\n"
                "    results[job] = job\n"
                "def fan_out(jobs):\n"
                "    with ThreadPoolExecutor(max_workers=4) as pool:\n"
                "        list(pool.map(lambda j: work(j), jobs))\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r060 = [f for f in report if f.code == "R060" and f.active]
    assert any("results[job]" in f.message for f in r060)


def test_r060_clean_when_write_is_locked(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/counts.py": (
                "import threading\n"
                "class Stats:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.hits = 0\n"
                "    def bump(self):\n"
                "        with self._lock:\n"
                "            self.hits += 1\n"
                "stats = Stats()\n"
                "def handle_status(request):\n"
                "    stats.bump()\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R060" not in active_codes(report)


def test_r060_ignores_process_isolated_roots(tmp_path: Path) -> None:
    """Pool workers share no memory: one isolated root never fires."""
    root = mini_project(
        tmp_path,
        {
            "pkg/w.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "totals = {}\n"
                "def work(job):\n"
                "    totals[job] = job\n"
                "def run(jobs):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        list(pool.map(work, jobs))\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R060" not in active_codes(report)


# ----------------------------------------------------------------------
# R061 — unpaired / non-finally lock release
# ----------------------------------------------------------------------


def test_r061_fires_on_release_outside_finally(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/locks.py": (
                "import threading\n"
                "lock = threading.Lock()\n"
                "def bad():\n"
                "    lock.acquire()\n"
                "    lock.release()\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r061 = [f for f in report if f.code == "R061" and f.active]
    assert r061 and "finally" in r061[0].message


def test_r061_fires_on_missing_release(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/locks.py": (
                "import threading\n"
                "lock = threading.Lock()\n"
                "def bad():\n"
                "    lock.acquire()\n"
                "    return 1\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r061 = [f for f in report if f.code == "R061" and f.active]
    assert r061 and "no" in r061[0].message and "release" in r061[0].message


def test_r061_clean_with_try_finally_and_with(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/locks.py": (
                "import threading\n"
                "lock = threading.Lock()\n"
                "def good():\n"
                "    lock.acquire()\n"
                "    try:\n"
                "        return 1\n"
                "    finally:\n"
                "        lock.release()\n"
                "def better():\n"
                "    with lock:\n"
                "        return 2\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R061" not in active_codes(report)


# ----------------------------------------------------------------------
# R062 — lock-order inversion
# ----------------------------------------------------------------------


def test_r062_fires_on_opposite_nesting(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/order.py": (
                "import threading\n"
                "lock_a = threading.Lock()\n"
                "lock_b = threading.Lock()\n"
                "def one():\n"
                "    with lock_a:\n"
                "        with lock_b:\n"
                "            pass\n"
                "def two():\n"
                "    with lock_b:\n"
                "        with lock_a:\n"
                "            pass\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r062 = [f for f in report if f.code == "R062" and f.active]
    assert r062 and "opposite order" in r062[0].message


def test_r062_fires_through_callee_acquisition(tmp_path: Path) -> None:
    """Inner lock taken by a callee still inverts against a direct nest."""
    root = mini_project(
        tmp_path,
        {
            "pkg/order.py": (
                "import threading\n"
                "lock_a = threading.Lock()\n"
                "lock_b = threading.Lock()\n"
                "def takes_a():\n"
                "    with lock_a:\n"
                "        pass\n"
                "def one():\n"
                "    with lock_b:\n"
                "        takes_a()\n"
                "def two():\n"
                "    with lock_a:\n"
                "        with lock_b:\n"
                "            pass\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R062" in active_codes(report)


def test_r062_clean_with_consistent_order(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/order.py": (
                "import threading\n"
                "lock_a = threading.Lock()\n"
                "lock_b = threading.Lock()\n"
                "def one():\n"
                "    with lock_a:\n"
                "        with lock_b:\n"
                "            pass\n"
                "def two():\n"
                "    with lock_a:\n"
                "        with lock_b:\n"
                "            pass\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R062" not in active_codes(report)


# ----------------------------------------------------------------------
# R063 — fork after threads
# ----------------------------------------------------------------------


def test_r063_fires_on_pool_after_thread_start(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/forked.py": (
                "import threading\n"
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def work():\n"
                "    pass\n"
                "def run():\n"
                "    t = threading.Thread(target=work, daemon=True)\n"
                "    t.start()\n"
                "    pool = ProcessPoolExecutor()\n"
                "    return pool, t\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r063 = [f for f in report if f.code == "R063" and f.active]
    assert r063 and "fork" in r063[0].message


def test_r063_clean_when_pool_created_first(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/forked.py": (
                "import threading\n"
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def work():\n"
                "    pass\n"
                "def run():\n"
                "    pool = ProcessPoolExecutor()\n"
                "    t = threading.Thread(target=work, daemon=True)\n"
                "    t.start()\n"
                "    return pool, t\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R063" not in active_codes(report)


# ----------------------------------------------------------------------
# R064 — non-atomic O_APPEND journal appends
# ----------------------------------------------------------------------


def test_r064_fires_on_second_append_write(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/journal.py": (
                "import os\n"
                "def record(path, key, size):\n"
                "    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT)\n"
                "    os.write(fd, key.encode())\n"
                "    os.write(fd, str(size).encode())\n"
                "    os.close(fd)\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r064 = [f for f in report if f.code == "R064" and f.active]
    assert r064 and "atomic" in r064[0].message


def test_r064_clean_with_single_write(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/journal.py": (
                "import os\n"
                "def record(path, key, size):\n"
                "    line = f'{key} {size}\\n'.encode()\n"
                "    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT)\n"
                "    os.write(fd, line)\n"
                "    os.close(fd)\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R064" not in active_codes(report)


# ----------------------------------------------------------------------
# R065 — blocking call under lock (warning)
# ----------------------------------------------------------------------


def test_r065_fires_on_sleep_under_lock(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/slow.py": (
                "import threading\n"
                "import time\n"
                "lock = threading.Lock()\n"
                "def slow():\n"
                "    with lock:\n"
                "        time.sleep(0.1)\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r065 = [f for f in report if f.code == "R065" and f.active]
    assert r065 and r065[0].severity.value == "warning"


def test_r065_clean_when_blocking_outside_lock(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/slow.py": (
                "import threading\n"
                "import time\n"
                "lock = threading.Lock()\n"
                "def slow():\n"
                "    with lock:\n"
                "        pass\n"
                "    time.sleep(0.1)\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R065" not in active_codes(report)


# ----------------------------------------------------------------------
# R066 — leaked non-daemon threads (warning)
# ----------------------------------------------------------------------


def test_r066_fires_on_unjoined_nondaemon_thread(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/spawn.py": (
                "import threading\n"
                "def work():\n"
                "    pass\n"
                "def run():\n"
                "    t = threading.Thread(target=work)\n"
                "    t.start()\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r066 = [f for f in report if f.code == "R066" and f.active]
    assert r066 and "join" in r066[0].message


def test_r066_clean_when_joined_daemon_or_returned(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/spawn.py": (
                "import threading\n"
                "def work():\n"
                "    pass\n"
                "def joined():\n"
                "    t = threading.Thread(target=work)\n"
                "    t.start()\n"
                "    t.join()\n"
                "def daemonic():\n"
                "    t = threading.Thread(target=work, daemon=True)\n"
                "    t.start()\n"
                "def handed_back():\n"
                "    t = threading.Thread(target=work)\n"
                "    t.start()\n"
                "    return t\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R066" not in active_codes(report)


# ----------------------------------------------------------------------
# R070 — int64 overflow prover
# ----------------------------------------------------------------------


def test_r070_fires_on_seeded_overflow(tmp_path: Path) -> None:
    """macs × elems over declared bounds reaches 2**88 ≥ 2**63."""
    root = mini_project(
        tmp_path,
        {
            "pkg/vec.py": (
                "import numpy as np\n"
                "def layer_products(layers):\n"
                "    macs = np.array([la.macs for la in layers], dtype=np.int64)\n"
                "    elems = np.array([la.ifmap_elems for la in layers], dtype=np.int64)\n"
                "    total = macs * elems\n"
                "    return total\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r070 = [f for f in report if f.code == "R070" and f.active]
    assert r070, "out-of-bounds int64 product must fail the proof"
    assert "2**63" in r070[0].message


def test_r070_proves_bounded_closed_form_clean(tmp_path: Path) -> None:
    """elems × bytes_per_elem summed over layers stays below 2**63."""
    root = mini_project(
        tmp_path,
        {
            "pkg/vec.py": (
                "import numpy as np\n"
                "def model_bytes(layers, bytes_per_elem):\n"
                "    elems = np.array([la.ifmap_elems for la in layers], dtype=np.int64)\n"
                "    scaled = elems * bytes_per_elem\n"
                "    return int(scaled.sum())\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R070" not in active_codes(report)


def test_r070_repo_closed_forms_prove_clean() -> None:
    """The acceptance proof: the real estimator/plancore arithmetic
    carries no unprovable int64 intermediate over the declared bounds."""
    repo_root = Path(__file__).resolve().parent.parent
    report = analyze_paths(
        [repo_root / "src" / "repro"], root=repo_root, use_baseline=False
    )
    assert not [f for f in report if f.code == "R070" and f.active]


# ----------------------------------------------------------------------
# R071 — silent int→float promotion into an integer-unit name
# ----------------------------------------------------------------------


def test_r071_fires_on_promoted_batch_binding(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/promo.py": (
                "import numpy as np\n"
                "def halves(layers):\n"
                "    elems = np.array([la.in_c for la in layers], dtype=np.float64)\n"
                "    half_elems = elems / 2\n"
                "    return half_elems\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r071 = [f for f in report if f.code == "R071" and f.active]
    assert r071 and "half_elems" in r071[0].message


def test_r071_clean_for_float_named_binding(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/promo.py": (
                "import numpy as np\n"
                "def halves(layers):\n"
                "    elems = np.array([la.in_c for la in layers], dtype=np.float64)\n"
                "    half_ratio = elems / 2\n"
                "    return half_ratio\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R071" not in active_codes(report)


# ----------------------------------------------------------------------
# R072 — float64 precision loss treated as exact
# ----------------------------------------------------------------------


def test_r072_fires_on_integer_unit_binding_of_lossy_float(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/prec.py": (
                "def per_item(total_bytes, count):\n"
                "    avg_bytes = total_bytes / count\n"
                "    return avg_bytes\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r072 = [f for f in report if f.code == "R072" and f.active]
    assert r072 and "2**53" in r072[0].message
    assert "total_bytes" in r072[0].message


def test_r072_fires_on_int_round_trip(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/prec.py": (
                "def per_item(total_bytes, count):\n"
                "    return int(total_bytes / count)\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R072" in active_codes(report)


def test_r072_clean_for_ratio_reporting(tmp_path: Path) -> None:
    """A float used as a float — a percentage — never fires."""
    root = mini_project(
        tmp_path,
        {
            "pkg/prec.py": (
                "def pct(total_bytes, bound_bytes):\n"
                "    if not bound_bytes:\n"
                "        return 0.0\n"
                "    ratio = total_bytes / bound_bytes\n"
                "    return 100.0 * ratio\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R072" not in active_codes(report)


# ----------------------------------------------------------------------
# R073 — declared dtype mixing
# ----------------------------------------------------------------------


def test_r073_fires_on_declared_int_float_mix(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/mix.py": (
                "import numpy as np\n"
                "def mixed(layers):\n"
                "    a = np.array([la.in_c for la in layers], dtype=np.int64)\n"
                "    b = np.array([la.stride for la in layers], dtype=np.float64)\n"
                "    return a + b\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r073 = [f for f in report if f.code == "R073" and f.active]
    assert r073 and "int" in r073[0].message and "float" in r073[0].message


def test_r073_clean_when_dtype_not_declared(tmp_path: Path) -> None:
    """Inferred dtype families never fire — only explicit declarations."""
    root = mini_project(
        tmp_path,
        {
            "pkg/mix.py": (
                "import numpy as np\n"
                "def mixed(layers):\n"
                "    a = np.array([la.in_c for la in layers], dtype=np.int64)\n"
                "    b = np.array([la.stride for la in layers])\n"
                "    return a + b\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R073" not in active_codes(report)


# ----------------------------------------------------------------------
# R074 — unguarded possibly-zero division
# ----------------------------------------------------------------------


def test_r074_fires_on_unguarded_zero_divisor(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/div.py": (
                "def utilization(used_bytes, free_bytes):\n"
                "    return used_bytes / free_bytes\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r074 = [f for f in report if f.code == "R074" and f.active]
    assert r074 and "free_bytes" in r074[0].message
    assert "zero" in r074[0].message


def test_r074_clean_with_branch_or_max_guard(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/div.py": (
                "def guarded(used_bytes, free_bytes):\n"
                "    if free_bytes:\n"
                "        return used_bytes / free_bytes\n"
                "    return 0.0\n"
                "def clamped(used_bytes, spare_bytes):\n"
                "    return used_bytes / max(1, spare_bytes)\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R074" not in active_codes(report)


def test_r074_clean_for_positive_seeded_divisor(tmp_path: Path) -> None:
    """Spec-validated quantities are seeded positive and never fire."""
    root = mini_project(
        tmp_path,
        {
            "pkg/div.py": (
                "def per_elem(total_bytes, bytes_per_elem):\n"
                "    return total_bytes // bytes_per_elem\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R074" not in active_codes(report)


# ----------------------------------------------------------------------
# Suppressions and SARIF round-trip for the new packs
# ----------------------------------------------------------------------


def test_noqa_suppresses_r060_and_r070(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/mixed.py": (
                "import numpy as np\n"
                "hits = {}\n"
                "def handle_one(request):\n"
                "    hits[request] = 1  # repro: noqa[R060] -- benign test seam\n"
                "def blow_up(layers):\n"
                "    macs = np.array([la.macs for la in layers], dtype=np.int64)\n"
                "    return macs * macs  # repro: noqa[R070] -- fixture\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert not active_codes(report) & {"R060", "R070"}
    assert {"R060", "R070"} <= {f.code for f in report.suppressed}


def test_sarif_round_trip_for_new_packs(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/bad.py": (
                "import numpy as np\n"
                "hits = {}\n"
                "def handle_one(request):\n"
                "    hits[request] = 1\n"
                "def blow_up(layers):\n"
                "    macs = np.array([la.macs for la in layers], dtype=np.int64)\n"
                "    return macs * macs\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    payload = sarif_payload(report)
    assert validate_sarif_payload(payload) == []
    run = payload["runs"][0]
    results_by_rule = {r["ruleId"] for r in run["results"]}
    assert {"R060", "R070"} <= results_by_rule
    for result in run["results"]:
        if result["ruleId"] in ("R060", "R070"):
            fp = result["partialFingerprints"][FINGERPRINT_KEY]
            assert isinstance(fp, str) and fp
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert "R060" in rule_ids and "R070" in rule_ids


# ----------------------------------------------------------------------
# Pack selection and incremental mode
# ----------------------------------------------------------------------

_TWO_HAZARDS = {
    "pkg/two.py": (
        "import numpy as np\n"
        "hits = {}\n"
        "def handle_one(request):\n"
        "    hits[request] = 1\n"
        "def f(a_bytes, b_elems):\n"
        "    return a_bytes + b_elems\n"
    ),
}


def test_packs_selection_runs_only_named_packs(tmp_path: Path) -> None:
    root = mini_project(tmp_path, dict(_TWO_HAZARDS))
    full = analyze_paths([root], root=root, use_baseline=False)
    assert {"R001", "R060"} <= active_codes(full)
    only_units = analyze_paths(
        [root], root=root, use_baseline=False, packs=["units"]
    )
    assert "R001" in active_codes(only_units)
    assert "R060" not in active_codes(only_units)
    only_conc = analyze_paths(
        [root], root=root, use_baseline=False, packs=["concurrency"]
    )
    assert "R060" in active_codes(only_conc)
    assert "R001" not in active_codes(only_conc)


def test_packs_unknown_name_raises(tmp_path: Path) -> None:
    root = mini_project(tmp_path, dict(_TWO_HAZARDS))
    with pytest.raises(ValueError, match="unknown rule pack"):
        analyze_paths([root], root=root, use_baseline=False, packs=["nope"])


def test_packs_cli_flag_and_bad_name_exit_code(tmp_path: Path, capsys) -> None:
    root = mini_project(tmp_path, dict(_TWO_HAZARDS))
    assert main(["lint", str(root), "--packs", "registry"]) == 0
    capsys.readouterr()
    assert main(["lint", str(root), "--packs", "nope"]) == 2
    assert "unknown rule pack" in capsys.readouterr().err


def test_changed_files_limits_scope_and_skips_project_rules(
    tmp_path: Path,
) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/clean.py": "def ok():\n    return 1\n",
            **_TWO_HAZARDS,
        },
    )
    report = analyze_paths(
        [root],
        root=root,
        use_baseline=False,
        changed_files=[root / "pkg" / "two.py"],
    )
    assert report.files == 1
    # File-scope units rule still fires on the changed file…
    assert "R001" in active_codes(report)
    # …but the whole-program packs are skipped (their call graph would
    # be incomplete over a partial file set).
    assert "R060" not in active_codes(report)


def test_changed_files_cli_flag(tmp_path: Path, capsys) -> None:
    root = mini_project(tmp_path, dict(_TWO_HAZARDS))
    code = main(
        [
            "lint",
            str(root),
            "--changed-files",
            str(root / "pkg" / "two.py"),
            "--format",
            "json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1  # R001 fires on the changed file
    codes = {f["code"] for f in payload["diagnostics"]}
    assert "R001" in codes and "R060" not in codes
