"""JSON import/export of model descriptions."""

import json

import pytest

from repro.nn import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.nn.io import layer_from_dict, layer_to_dict
from repro.nn.zoo import get_model


class TestLayerRoundTrip:
    def test_round_trip(self, conv_layer):
        assert layer_from_dict(layer_to_dict(conv_layer)) == conv_layer

    def test_depthwise_round_trip(self, dw_layer):
        assert layer_from_dict(layer_to_dict(dw_layer)) == dw_layer

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="bad layer record"):
            layer_from_dict({"kind": "XX", "name": "l"})

    def test_rejects_missing_fields(self, conv_layer):
        record = layer_to_dict(conv_layer)
        del record["in_h"]
        with pytest.raises(ValueError, match="missing fields"):
            layer_from_dict(record)


class TestModelRoundTrip:
    def test_zoo_model_round_trip(self):
        model = get_model("ResNet18")
        clone = model_from_dict(model_to_dict(model))
        assert clone == model
        assert clone.sequential_pairs == model.sequential_pairs

    def test_file_round_trip(self, tmp_path):
        model = get_model("MobileNet")
        path = tmp_path / "mobilenet.json"
        save_model(model, path)
        assert load_model(path) == model

    def test_json_is_stable(self, tmp_path):
        model = get_model("MnasNet")
        path = tmp_path / "m.json"
        save_model(model, path)
        data = json.loads(path.read_text())
        assert data["schema"] == 1
        assert data["name"] == "MnasNet"
        assert len(data["layers"]) == len(model)

    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            model_from_dict({"schema": 99, "name": "m", "layers": []})

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="needs"):
            model_from_dict({"schema": 1})
