"""Tile-search fallback: fits tiny budgets, never beats the compulsory minimum."""

import pytest

from repro.policies import FALLBACK_POLICY, TiledFallback

BIG = 1 << 40


def _min_traffic(layer):
    """Compulsory traffic: touched padded ifmap + filters + ofmap, once each."""
    from repro.policies.base import Policy

    return Policy.ifmap_pass_elems(layer) + layer.filter_elems + layer.ofmap_elems


class TestTiledFallback:
    def test_is_the_registered_fallback(self):
        assert isinstance(FALLBACK_POLICY, TiledFallback)

    def test_fits_budget_too_small_for_named_policies(self, conv_layer):
        # Smaller than P5's n=1 footprint (needs a full 56x56 ofmap channel).
        tiny = 1500
        plan = TiledFallback().plan(conv_layer, tiny, False)
        assert plan is not None
        assert plan.memory_elems <= tiny

    def test_traffic_at_least_compulsory(self, conv_layer):
        plan = TiledFallback().plan(conv_layer, 1500, False)
        assert plan.traffic.total >= _min_traffic(conv_layer)

    def test_large_budget_reaches_near_minimum(self, conv_layer):
        plan = TiledFallback().plan(conv_layer, BIG, False)
        # With everything fitting, the band search converges to one pass.
        assert plan.traffic.total <= 2 * _min_traffic(conv_layer)

    def test_schedule_matches_traffic(self, conv_layer, dw_layer, pw_layer, fc_layer):
        for layer in (conv_layer, dw_layer, pw_layer, fc_layer):
            for budget in (2_000, 50_000, BIG):
                plan = TiledFallback().plan(layer, budget, False)
                if plan is None:
                    continue
                s, t = plan.schedule, plan.traffic
                assert s.total_ifmap_load == t.ifmap_reads
                assert s.total_filter_load == t.filter_reads
                assert s.total_store == t.ofmap_writes + t.ofmap_spills
                assert s.total_macs == layer.macs

    def test_monotone_in_budget(self, conv_layer):
        last = None
        for budget in (1_000, 2_000, 8_000, 64_000, 1 << 30):
            plan = TiledFallback().plan(conv_layer, budget, False)
            if plan is None:
                continue
            if last is not None:
                assert plan.traffic.total <= last
            last = plan.traffic.total

    def test_prefetch_variant_fits_half(self, conv_layer):
        plain = TiledFallback().plan(conv_layer, 4_000, False)
        pf = TiledFallback().plan(conv_layer, 4_000, True)
        assert plain is not None and pf is not None
        assert pf.memory_elems <= 4_000

    def test_infeasible_only_below_absolute_floor(self, small_conv):
        # One row band, one filter, one channel window still needs space.
        assert TiledFallback().plan(small_conv, 10, False) is None

    def test_depthwise(self, dw_layer):
        plan = TiledFallback().plan(dw_layer, 1_000, False)
        assert plan is not None
        assert plan.traffic.total >= _min_traffic(dw_layer)


class TestWidthDirection:
    """Fig. 2a's width-wise access direction (engaged under extreme pressure)."""

    def _wide_layer(self):
        from repro.nn import LayerKind, LayerSpec

        return LayerSpec("wide", LayerKind.CONV, 8, 500, 1, 3, 3, 1, 1, 1)

    def test_width_tiling_engages_when_needed(self):
        plan = TiledFallback().plan(self._wide_layer(), 600, False)
        assert plan is not None
        assert plan.tile_shape is not None
        assert plan.tile_shape[1] < 500  # column bands in use
        assert plan.memory_elems <= 600

    def test_full_width_preferred_when_it_fits(self, conv_layer):
        plan = TiledFallback().plan(conv_layer, 64_000, False)
        assert plan is not None
        assert plan.tile_shape[1] == conv_layer.out_w

    def test_width_halo_costs_traffic(self):
        layer = self._wide_layer()
        wide_budget = TiledFallback().plan(layer, 100_000, False)
        tight_budget = TiledFallback().plan(layer, 600, False)
        assert tight_budget.traffic.total > wide_budget.traffic.total

    def test_schedule_consistency_with_width_bands(self):
        layer = self._wide_layer()
        plan = TiledFallback().plan(layer, 600, False)
        s, t = plan.schedule, plan.traffic
        assert s.total_ifmap_load == t.ifmap_reads
        assert s.total_filter_load == t.filter_reads
        assert s.total_store == t.ofmap_writes
        assert s.total_macs == layer.macs
