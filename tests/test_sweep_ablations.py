"""Design-space sweeps and ablation studies."""

import pytest

from repro.analyzer import Objective
from repro.arch import kib
from repro.experiments.ablations import (
    baseline_dataflows,
    baseline_dataflows_table,
    fallback_participation,
    fallback_participation_table,
    interlayer_modes,
    interlayer_modes_table,
)
from repro.experiments.sweep import (
    bandwidth_sweep,
    glb_sweep,
    smallest_glb_within,
    sweep_table,
)
from repro.nn.zoo import get_model


class TestGlbSweep:
    def test_accesses_monotone_nonincreasing(self):
        model = get_model("MobileNet")
        points = glb_sweep(model, [kib(64), kib(256), kib(1024)])
        accesses = [p.accesses_bytes for p in points]
        assert accesses == sorted(accesses, reverse=True)

    def test_peak_memory_fits(self):
        model = get_model("MobileNet")
        for point in glb_sweep(model, [kib(64), kib(512)]):
            assert point.max_memory_bytes <= point.value

    def test_policies_recorded(self):
        model = get_model("MobileNet")
        points = glb_sweep(model, [kib(64)])
        assert points[0].policies

    def test_table(self):
        model = get_model("MobileNet")
        table = sweep_table("t", "glb", glb_sweep(model, [kib(64), kib(128)]))
        assert "accesses (MB)" in table.headers[1]
        assert len(table.rows) == 2


class TestBandwidthSweep:
    def test_latency_monotone_in_bandwidth(self):
        model = get_model("MobileNet")
        points = bandwidth_sweep(model, [4, 16, 64], Objective.LATENCY)
        latencies = [p.latency_cycles for p in points]
        assert latencies == sorted(latencies, reverse=True)

    def test_latency_floor_is_compute(self):
        model = get_model("MobileNet")
        huge_bw = bandwidth_sweep(model, [10_000], Objective.LATENCY)[0]
        compute_floor = model.total_macs / 256.0
        assert huge_bw.latency_cycles >= compute_floor - 1


class TestSmallestGlb:
    def test_finds_knee(self):
        model = get_model("MnasNet")
        sizes = [kib(s) for s in (64, 128, 256, 512, 1024)]
        size, points = smallest_glb_within(model, target_pct=5.0, sizes_bytes=sizes)
        assert size in sizes
        # Het accesses are nearly flat for MnasNet: the knee is the
        # smallest size.
        assert size == kib(64)
        assert len(points) == 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            smallest_glb_within(get_model("MnasNet"), 5.0, [])


class TestInterlayerAblation:
    def test_joint_dominates_opportunistic(self):
        rows = interlayer_modes(glb_sizes_kb=(64, 128))
        for r in rows:
            assert r.joint_benefit_pct >= r.opportunistic_benefit_pct - 1e-9
            assert r.joint_extra_benefit_pct >= -1e-9

    def test_table(self):
        rows = interlayer_modes(glb_sizes_kb=(64,))
        assert "joint" in interlayer_modes_table(rows).render()


class TestFallbackAblation:
    def test_search_never_hurts(self):
        rows = fallback_participation(
            model_names=("ResNet18",), glb_sizes_kb=(64, 128)
        )
        for r in rows:
            assert r.with_search_mib <= r.named_only_mib + 1e-9

    def test_search_helps_somewhere(self):
        """The ablation exists because the search wins on some layers."""
        rows = fallback_participation(
            model_names=("ResNet18", "EfficientNetB0"), glb_sizes_kb=(64,)
        )
        assert any(r.search_benefit_pct > 0.5 for r in rows)

    def test_table(self):
        rows = fallback_participation(model_names=("ResNet18",), glb_sizes_kb=(64,))
        assert "named-only" in fallback_participation_table(rows).render()


class TestDataflowAblation:
    def test_all_dataflows_run(self):
        rows = baseline_dataflows(model_names=("MobileNet",))
        row = rows[0]
        assert row.os_cycles > 0 and row.ws_cycles > 0 and row.is_cycles > 0

    def test_table(self):
        rows = baseline_dataflows(model_names=("MobileNet",))
        text = baseline_dataflows_table(rows).render()
        assert "OS" in text and "WS" in text and "IS" in text
