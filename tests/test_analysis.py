"""Tests for the domain static analyzer (``repro lint``, R0xx codes).

Covers: one firing and one clean fixture per rule, inline suppressions,
the baseline mechanism, the shared lint/verify JSON schema, the CLI exit
codes (including a deliberately seeded bug from each rule pack), and the
self-check that the repository's own sources lint clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULE_CODES,
    RULE_PACKS,
    RULE_TITLES,
    WARNING_CODES,
    Finding,
    analyze_paths,
    analyze_source,
    load_baseline,
    parse_suppressions,
    severity_of,
    write_baseline,
)
from repro.cli import main
from repro.report.diagnostics import SCHEMA_ID, validate_payload
from repro.verify.diagnostics import Severity

REPO_ROOT = Path(__file__).resolve().parent.parent


def active_codes(findings) -> set[str]:
    """Codes of the findings that still gate."""
    return {f.code for f in findings if f.active}


def mini_project(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write a throwaway project (with a pyproject.toml root marker)."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname='fixture'\n")
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return tmp_path


# ----------------------------------------------------------------------
# Catalog integrity
# ----------------------------------------------------------------------


def test_catalog_is_consistent() -> None:
    assert ALL_RULE_CODES == tuple(sorted(RULE_TITLES))
    assert set(RULE_PACKS) == set(RULE_TITLES)
    assert WARNING_CODES <= set(RULE_TITLES)
    assert severity_of("R004") is Severity.WARNING
    assert severity_of("R001") is Severity.ERROR


def test_unknown_code_rejected() -> None:
    with pytest.raises(ValueError):
        Finding(code="R999", path="x.py", line=1, message="nope")


def test_docs_list_every_rule_code() -> None:
    """docs/static-analysis.md has a table row per code, like verification.md."""
    doc = (REPO_ROOT / "docs" / "static-analysis.md").read_text()
    for code, title in RULE_TITLES.items():
        assert f"| {code} | {title} |" in doc, f"{code} missing from docs"


# ----------------------------------------------------------------------
# Engine pack (R000)
# ----------------------------------------------------------------------


def test_r000_fires_on_syntax_error() -> None:
    findings = analyze_source("def broken(:\n")
    assert [f.code for f in findings] == ["R000"]


def test_r000_clean_on_valid_source() -> None:
    assert "R000" not in active_codes(analyze_source("x = 1\n"))


# ----------------------------------------------------------------------
# Unit-safety pack (R001-R004)
# ----------------------------------------------------------------------


def test_r001_fires_on_byte_element_addition() -> None:
    src = "def fits(ifmap_bytes: int, halo_elems: int) -> int:\n"
    src += "    return ifmap_bytes + halo_elems\n"
    assert "R001" in active_codes(analyze_source(src))


def test_r001_fires_on_cross_unit_comparison() -> None:
    src = "def over(tile_elems: int, glb_bytes: int) -> bool:\n"
    src += "    return tile_elems > glb_bytes\n"
    assert "R001" in active_codes(analyze_source(src))


def test_r001_clean_on_same_unit_math() -> None:
    src = "def total(ifmap_bytes: int, filter_bytes: int) -> int:\n"
    src += "    return ifmap_bytes + filter_bytes\n"
    assert "R001" not in active_codes(analyze_source(src))


def test_r002_fires_on_bare_doubling() -> None:
    src = "def residency(tile_bytes: int) -> int:\n"
    src += "    return tile_bytes * 2\n"
    assert "R002" in active_codes(analyze_source(src))


def test_r002_clean_inside_prefetch_helper() -> None:
    src = "def prefetch_footprint(tile_bytes: int) -> int:\n"
    src += "    return tile_bytes * 2\n"
    assert "R002" not in active_codes(analyze_source(src))


def test_r002_clean_with_named_factor() -> None:
    src = "def residency(tile_bytes: int, factor: int) -> int:\n"
    src += "    return tile_bytes * factor\n"
    assert "R002" not in active_codes(analyze_source(src))


def test_r003_fires_on_true_division_into_bytes() -> None:
    src = "def f(n: int) -> int:\n    total_bytes = n / 4\n    return total_bytes\n"
    assert "R003" in active_codes(analyze_source(src))


def test_r003_clean_on_floor_division() -> None:
    src = "def f(n: int) -> int:\n    total_bytes = n // 4\n    return total_bytes\n"
    assert "R003" not in active_codes(analyze_source(src))


def test_r003_clean_on_unitless_ratio() -> None:
    src = "def f(n: int) -> float:\n    ratio = n / 4\n    return ratio\n"
    assert "R003" not in active_codes(analyze_source(src))


def test_r004_fires_on_magic_1024() -> None:
    src = "def f(glb_bytes: int) -> float:\n    return glb_bytes / 1024\n"
    findings = analyze_source(src)
    assert "R004" in active_codes(findings)
    (finding,) = [f for f in findings if f.code == "R004"]
    assert finding.severity is Severity.WARNING


def test_r004_clean_on_non_unit_operand() -> None:
    src = "def f(offset: int) -> float:\n    return offset / 1024\n"
    assert "R004" not in active_codes(analyze_source(src))


# ----------------------------------------------------------------------
# Determinism pack (R010-R015)
# ----------------------------------------------------------------------


def test_r010_fires_on_random_call() -> None:
    src = "import random\n\ndef jitter() -> float:\n    return random.random()\n"
    assert "R010" in active_codes(analyze_source(src))


def test_r010_clean_on_perf_counter_and_seeded_rng() -> None:
    src = (
        "import time\n"
        "import numpy\n\n"
        "def bench() -> float:\n"
        "    rng = numpy.random.default_rng(1234)\n"
        "    del rng\n"
        "    return time.perf_counter()\n"
    )
    assert "R010" not in active_codes(analyze_source(src))


def test_r011_fires_on_environ_read() -> None:
    src = "import os\n\ndef knob() -> str | None:\n    return os.environ.get('X')\n"
    findings = analyze_source(src)
    assert "R011" in active_codes(findings)
    (finding,) = [f for f in findings if f.code == "R011"]
    assert finding.severity is Severity.WARNING


def test_r011_clean_on_environ_write() -> None:
    src = "import os\n\ndef set_knob() -> None:\n    os.environ['X'] = '1'\n"
    assert "R011" not in active_codes(analyze_source(src))


def test_r012_fires_on_lambda_submitted_to_pool() -> None:
    src = (
        "from concurrent.futures import ProcessPoolExecutor\n\n"
        "def run() -> None:\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        pool.submit(lambda: 1)\n"
    )
    assert "R012" in active_codes(analyze_source(src))


def test_r012_clean_on_module_level_worker() -> None:
    src = (
        "from concurrent.futures import ProcessPoolExecutor\n\n"
        "def worker() -> int:\n"
        "    return 1\n\n"
        "def run() -> None:\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        pool.submit(worker)\n"
    )
    assert "R012" not in active_codes(analyze_source(src))


def test_r013_fires_on_set_iteration_in_key() -> None:
    src = (
        "def make_key(parts: list[str]) -> str:\n"
        "    return ''.join(p for p in set(parts))\n"
    )
    assert "R013" in active_codes(analyze_source(src))


def test_r013_clean_when_sorted() -> None:
    src = (
        "def make_key(parts: list[str]) -> str:\n"
        "    return ''.join(p for p in sorted(set(parts)))\n"
    )
    assert "R013" not in active_codes(analyze_source(src))


def test_r014_fires_on_unsorted_dumps_in_digest() -> None:
    src = (
        "import json\n\n"
        "def model_digest(payload: dict) -> str:\n"
        "    return json.dumps(payload)\n"
    )
    assert "R014" in active_codes(analyze_source(src))


def test_r014_clean_with_sort_keys() -> None:
    src = (
        "import json\n\n"
        "def model_digest(payload: dict) -> str:\n"
        "    return json.dumps(payload, sort_keys=True)\n"
    )
    assert "R014" not in active_codes(analyze_source(src))


def test_r014_clean_outside_digest_context() -> None:
    src = (
        "import json\n\n"
        "def pretty(payload: dict) -> str:\n"
        "    return json.dumps(payload)\n"
    )
    assert "R014" not in active_codes(analyze_source(src))


def test_r015_fires_on_module_level_dict() -> None:
    assert "R015" in active_codes(analyze_source("cache = {}\n"))


def test_r015_clean_on_constants_and_dunders() -> None:
    src = "LIMITS = {}\n__all__ = ['LIMITS']\n"
    assert "R015" not in active_codes(analyze_source(src))


# ----------------------------------------------------------------------
# Registry pack (R020-R023), project scope
# ----------------------------------------------------------------------

CLEAN_CATALOG = {
    "verify/codes.py": (
        'CODE_TITLES = {"V001": "alpha"}\n'
        'CODE_DESCRIPTIONS = {"V001": "alpha invariant"}\n'
    ),
    "verify/checks.py": 'def check() -> str:\n    return "V001"\n',
    "docs/verification.md": "| Code | Title |\n|---|---|\n| V001 | alpha |\n",
}


def test_r020_fires_on_undescribed_unraised_code(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            **CLEAN_CATALOG,
            "verify/codes.py": (
                'CODE_TITLES = {"V001": "alpha", "V002": "beta"}\n'
                'CODE_DESCRIPTIONS = {"V001": "alpha invariant"}\n'
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    messages = [f.message for f in report.active if f.code == "R020"]
    assert any("no description" in m for m in messages)
    assert any("never raised" in m for m in messages)
    assert any("missing from" in m for m in messages)


def test_r020_clean_on_consistent_catalog(tmp_path: Path) -> None:
    root = mini_project(tmp_path, CLEAN_CATALOG)
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R020" not in active_codes(report)


def test_r021_fires_on_unregistered_policy(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "policies/base.py": "class Policy:\n    pass\n",
            "policies/extra.py": (
                "from .base import Policy\n\n"
                "class ShinyPolicy(Policy):\n    pass\n"
            ),
            "policies/registry.py": "REGISTERED = ()\n",
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r021 = [f for f in report.active if f.code == "R021"]
    assert len(r021) == 1 and "ShinyPolicy" in r021[0].message


def test_r021_clean_when_registered(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "policies/base.py": "class Policy:\n    pass\n",
            "policies/extra.py": (
                "from .base import Policy\n\n"
                "class ShinyPolicy(Policy):\n    pass\n"
            ),
            "policies/registry.py": (
                "from .extra import ShinyPolicy\n\nREGISTERED = (ShinyPolicy,)\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R021" not in active_codes(report)


def test_r022_fires_on_undocumented_artifact(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "experiments/runner.py": (
                "def make() -> None:\n    pass\n\n"
                'ARTIFACTS = {"fig1": make, "fig2": make}\n'
            ),
            "EXPERIMENTS.md": "only `fig1` is described here\n",
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r022 = [f for f in report.active if f.code == "R022"]
    assert len(r022) == 1 and "fig2" in r022[0].message


def test_r022_clean_when_indexed(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "experiments/runner.py": (
                "def make() -> None:\n    pass\n\n"
                'ARTIFACTS = {"fig1": make, "fig2": make}\n'
            ),
            "EXPERIMENTS.md": "ids: `fig1`, `fig2`\n",
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R022" not in active_codes(report)


def test_r023_fires_on_stale_code_reference(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            **CLEAN_CATALOG,
            "verify/stale.py": 'def check() -> str:\n    return "V999"\n',
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r023 = [f for f in report.active if f.code == "R023"]
    assert len(r023) == 1 and "V999" in r023[0].message


def test_r023_clean_on_known_references(tmp_path: Path) -> None:
    root = mini_project(tmp_path, CLEAN_CATALOG)
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R023" not in active_codes(report)


# ----------------------------------------------------------------------
# Observability pack (R030-R031)
# ----------------------------------------------------------------------


def test_r030_fires_on_bare_span_start() -> None:
    src = (
        "def plan(tracer) -> None:\n"
        "    span = tracer.start('plan_layer')\n"
        "    span.set_attr('x', 1)\n"
    )
    assert "R030" in active_codes(analyze_source(src))


def test_r030_fires_on_accessor_chain() -> None:
    src = (
        "from repro.obs import get_tracer\n\n"
        "def plan() -> None:\n"
        "    get_tracer().start('plan_layer')\n"
    )
    assert "R030" in active_codes(analyze_source(src))


def test_r030_clean_with_context_manager() -> None:
    src = (
        "from repro.obs import get_tracer\n\n"
        "def plan() -> None:\n"
        "    with get_tracer().start('plan_layer') as span:\n"
        "        span.set_attr('x', 1)\n"
    )
    assert "R030" not in active_codes(analyze_source(src))


def test_r030_ignores_non_tracer_receivers() -> None:
    src = "def go(engine) -> None:\n    engine.start('motor')\n"
    assert "R030" not in active_codes(analyze_source(src))


def test_r031_fires_on_unsuffixed_metric_name() -> None:
    src = (
        "from repro.obs import metrics_registry\n\n"
        "def record() -> None:\n"
        "    metrics_registry().counter('cache_hits').add(1)\n"
    )
    assert "R031" in active_codes(analyze_source(src))


def test_r031_clean_on_suffixed_names_and_variables() -> None:
    src = (
        "from repro.obs import metrics_registry\n\n"
        "def record(name: str) -> None:\n"
        "    metrics_registry().counter('cache_hits_count').add(1)\n"
        "    metrics_registry().histogram('plan_seconds').observe(0.5)\n"
        "    metrics_registry().counter(name).add(1)\n"
    )
    assert "R031" not in active_codes(analyze_source(src))


# ----------------------------------------------------------------------
# Suppressions and baseline
# ----------------------------------------------------------------------


def test_noqa_suppresses_matching_code() -> None:
    src = (
        "def fits(a_bytes: int, b_elems: int) -> int:\n"
        "    return a_bytes + b_elems  # repro: noqa[R001] -- reviewed\n"
    )
    findings = analyze_source(src)
    (finding,) = [f for f in findings if f.code == "R001"]
    assert finding.suppressed and not finding.active


def test_noqa_does_not_suppress_other_codes() -> None:
    src = (
        "def fits(a_bytes: int, b_elems: int) -> int:\n"
        "    return a_bytes + b_elems  # repro: noqa[R002] -- wrong code\n"
    )
    assert "R001" in active_codes(analyze_source(src))


def test_parse_suppressions_captures_codes_and_reason() -> None:
    src = "x = 1  # repro: noqa[R001, R015] -- both intentional\n"
    (supp,) = parse_suppressions(src)
    assert supp.line == 1
    assert set(supp.codes) == {"R001", "R015"}
    assert supp.reason == "both intentional"


def test_baseline_round_trip(tmp_path: Path) -> None:
    finding = Finding(code="R015", path="pkg/mod.py", line=3, message="state")
    path = tmp_path / "baseline.json"
    assert write_baseline(path, [finding]) == 1
    baseline = load_baseline(path)
    assert baseline.covers(finding)
    moved = Finding(code="R015", path="pkg/mod.py", line=99, message="state")
    assert baseline.covers(moved)  # line-independent
    other = Finding(code="R015", path="pkg/other.py", line=3, message="state")
    assert not baseline.covers(other)


def test_missing_baseline_is_empty(tmp_path: Path) -> None:
    baseline = load_baseline(tmp_path / "nope.json")
    assert len(baseline) == 0


def test_baselined_findings_do_not_gate(tmp_path: Path) -> None:
    root = mini_project(tmp_path, {"pkg/state.py": "cache = {}\n"})
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R015" in active_codes(report)
    baseline_path = root / "baseline.json"
    write_baseline(baseline_path, report.active)
    rebaselined = analyze_paths(
        [root], root=root, baseline=load_baseline(baseline_path)
    )
    assert rebaselined.ok(strict=True)
    assert [f.code for f in rebaselined.baselined] == ["R015"]


def test_committed_baseline_is_empty() -> None:
    """Repo policy: the tree ships lint-clean, the baseline stays empty."""
    raw = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
    assert raw == {"schema": 2, "entries": []}


# ----------------------------------------------------------------------
# Self-check: the repository's own sources lint clean
# ----------------------------------------------------------------------


def test_repo_sources_lint_clean() -> None:
    report = analyze_paths(
        [REPO_ROOT / "src" / "repro"], root=REPO_ROOT, use_baseline=False
    )
    assert report.files > 100 and report.checks > report.files
    offenders = "\n".join(f.render() for f in report.active)
    assert report.ok(strict=True), f"unsuppressed findings:\n{offenders}"


def test_repo_suppressions_all_carry_reasons() -> None:
    """Every inline noqa in the tree explains itself."""
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        for supp in parse_suppressions(path.read_text()):
            assert supp.reason, f"{path}:{supp.line}: noqa without a reason"


# ----------------------------------------------------------------------
# CLI behavior and exit codes
# ----------------------------------------------------------------------


def test_cli_list_codes(capsys: pytest.CaptureFixture[str]) -> None:
    assert main(["lint", "--list-codes"]) == 0
    out = capsys.readouterr().out
    for code in ALL_RULE_CODES:
        assert code in out


def test_cli_missing_path_is_usage_error(capsys: pytest.CaptureFixture[str]) -> None:
    assert main(["lint", "definitely/not/a/path.py"]) == 2
    capsys.readouterr()


def test_cli_seeded_unit_bug_fails(
    tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/fit.py": (
                "def fits(ifmap_bytes: int, halo_elems: int) -> int:\n"
                "    return ifmap_bytes + halo_elems\n"
            )
        },
    )
    assert main(["lint", str(root), "--no-baseline", "--strict"]) == 1
    assert "R001" in capsys.readouterr().out


def test_cli_seeded_determinism_bug_fails(
    tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/worker.py": (
                "import random\n\n"
                "def sample() -> float:\n    return random.random()\n"
            )
        },
    )
    assert main(["lint", str(root), "--no-baseline", "--strict"]) == 1
    assert "R010" in capsys.readouterr().out


def test_cli_seeded_registry_bug_fails(
    tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    root = mini_project(
        tmp_path,
        {
            "policies/base.py": "class Policy:\n    pass\n",
            "policies/rogue.py": (
                "from .base import Policy\n\n"
                "class RoguePolicy(Policy):\n    pass\n"
            ),
            "policies/registry.py": "REGISTERED = ()\n",
        },
    )
    assert main(["lint", str(root), "--no-baseline", "--strict"]) == 1
    assert "R021" in capsys.readouterr().out


def test_cli_warnings_gate_only_under_strict(
    tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    root = mini_project(
        tmp_path,
        {"pkg/conv.py": "def f(glb_bytes: int) -> float:\n    return glb_bytes / 1024\n"},
    )
    assert main(["lint", str(root), "--no-baseline"]) == 0
    assert main(["lint", str(root), "--no-baseline", "--strict"]) == 1
    capsys.readouterr()


def test_cli_write_baseline_then_clean(
    tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    root = mini_project(tmp_path, {"pkg/state.py": "cache = {}\n"})
    baseline = tmp_path / "baseline.json"
    assert (
        main(["lint", str(root), "--no-baseline", "--write-baseline", str(baseline)])
        == 0
    )
    assert main(["lint", str(root), "--baseline", str(baseline), "--strict"]) == 0
    capsys.readouterr()


# ----------------------------------------------------------------------
# Shared JSON schema (lint + verify)
# ----------------------------------------------------------------------


def test_lint_json_matches_shared_schema(
    tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/fit.py": (
                "def fits(a_bytes: int, b_elems: int) -> int:\n"
                "    return a_bytes + b_elems\n"
            )
        },
    )
    assert main(["lint", str(root), "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert validate_payload(payload) == []
    assert payload["schema"] == SCHEMA_ID
    assert payload["tool"] == "lint"
    assert payload["ok"] is False
    assert any(e["code"] == "R001" for e in payload["diagnostics"])


def test_verify_json_matches_shared_schema(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["verify", "ResNet18", "--glb", "64", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert validate_payload(payload) == []
    assert payload["schema"] == SCHEMA_ID
    assert payload["tool"] == "verify"
    assert payload["ok"] is True
    assert payload["counts"]["checks"] > 0
