"""Inter-layer reuse (§5.4): transforms, feasibility, opportunistic and DP."""

import pytest

from repro.analyzer import (
    Objective,
    make_assignment,
    plan_heterogeneous,
    required_memory_elems,
    transformed_schedule,
)
from repro.arch import AcceleratorSpec, kib
from repro.estimators import evaluate_layer
from repro.nn import ModelBuilder
from repro.nn.zoo import get_model
from repro.policies import LayerSchedule, StepGroup


def _chain_model(channels=(8, 8, 8), hw=8):
    """A small pure chain of 3×3 convolutions (all pairs sequential)."""
    b = ModelBuilder("chain", (hw, hw, 4))
    for i, c in enumerate(channels):
        b.conv(f"c{i}", f=3, n=c)
    return b.build()


class TestTransformedSchedule:
    def _schedule(self):
        return LayerSchedule(
            groups=(StepGroup(count=2, ifmap=10, filters=5, macs=100, store=7),),
            resident_ifmap=20,
            resident_filters=30,
        )

    def test_identity(self):
        s = self._schedule()
        assert transformed_schedule(s, False, False) is s

    def test_receives_strips_ifmap(self):
        s = transformed_schedule(self._schedule(), True, False)
        assert s.total_ifmap_load == 0
        assert s.total_filter_load == 30 + 2 * 5
        assert s.total_store == 14

    def test_donates_strips_stores(self):
        s = transformed_schedule(self._schedule(), False, True)
        assert s.total_store == 0
        assert s.total_ifmap_load == 20 + 2 * 10

    def test_both(self):
        s = transformed_schedule(self._schedule(), True, True)
        assert s.total_ifmap_load == 0
        assert s.total_store == 0
        assert s.total_macs == 200


class TestRequiredMemory:
    def test_plain_equals_plan_memory(self, conv_layer, spec1m):
        ev = evaluate_layer(conv_layer, spec1m)[0]
        assert required_memory_elems(ev, False, False) == ev.plan.memory_elems

    def test_receives_uses_full_unpadded_ifmap(self, conv_layer, spec1m):
        ev = evaluate_layer(conv_layer, spec1m)[0]
        factor = 2 if ev.prefetch else 1
        expected = (
            conv_layer.ifmap_elems
            + factor * ev.plan.tiles.filters
            + factor * ev.plan.tiles.ofmap
        )
        assert required_memory_elems(ev, True, False) == expected

    def test_donates_uses_full_ofmap(self, conv_layer, spec1m):
        ev = evaluate_layer(conv_layer, spec1m)[0]
        factor = 2 if ev.prefetch else 1
        expected = (
            factor * ev.plan.tiles.ifmap
            + factor * ev.plan.tiles.filters
            + conv_layer.ofmap_elems
        )
        assert required_memory_elems(ev, False, True) == expected


class TestAssignmentMetrics:
    def test_receives_removes_ifmap_reads(self, conv_layer, spec1m):
        ev = evaluate_layer(conv_layer, spec1m)[0]
        plain = make_assignment(0, ev, spec1m)
        received = make_assignment(0, ev, spec1m, receives=True)
        b = spec1m.bytes_per_elem
        assert (
            plain.read_bytes - received.read_bytes
            == ev.plan.traffic.ifmap_reads * b
        )

    def test_donates_removes_ofmap_writes(self, conv_layer, spec1m):
        ev = evaluate_layer(conv_layer, spec1m)[0]
        plain = make_assignment(0, ev, spec1m)
        donated = make_assignment(0, ev, spec1m, donates=True)
        assert donated.write_bytes == 0
        assert donated.accesses_bytes < plain.accesses_bytes

    def test_adjustments_never_increase_latency(self, conv_layer, spec1m):
        for ev in evaluate_layer(conv_layer, spec1m):
            plain = make_assignment(0, ev, spec1m)
            for receives, donates in ((True, False), (False, True), (True, True)):
                adj = make_assignment(0, ev, spec1m, receives=receives, donates=donates)
                assert adj.latency_cycles <= plain.latency_cycles + 1e-9


class TestInterlayerPlans:
    @pytest.mark.parametrize("mode", ["opportunistic", "joint"])
    def test_never_worse_than_disabled(self, mode):
        model = get_model("MnasNet")
        for glb_kb in (64, 512):
            spec = AcceleratorSpec(glb_bytes=kib(glb_kb))
            base = plan_heterogeneous(model, spec)
            il = plan_heterogeneous(model, spec, interlayer=True, interlayer_mode=mode)
            assert il.total_accesses_bytes <= base.total_accesses_bytes

    def test_joint_not_worse_than_opportunistic(self):
        model = get_model("MnasNet")
        for glb_kb in (64, 128):
            spec = AcceleratorSpec(glb_bytes=kib(glb_kb))
            opp = plan_heterogeneous(
                model, spec, interlayer=True, interlayer_mode="opportunistic"
            )
            joint = plan_heterogeneous(
                model, spec, interlayer=True, interlayer_mode="joint"
            )
            assert joint.total_accesses_bytes <= opp.total_accesses_bytes

    def test_coverage_grows_with_buffer(self):
        model = get_model("MnasNet")
        coverages = [
            plan_heterogeneous(
                model,
                AcceleratorSpec(glb_bytes=kib(g)),
                interlayer=True,
            ).interlayer_coverage
            for g in (64, 256, 1024)
        ]
        assert coverages == sorted(coverages)
        assert coverages[-1] >= 0.9  # ~98% in the paper at 1 MB

    def test_chain_fully_donated_with_big_buffer(self):
        model = _chain_model()
        spec = AcceleratorSpec(glb_bytes=kib(1024))
        plan = plan_heterogeneous(model, spec, interlayer=True)
        # Every pair is sequential and everything fits: full coverage.
        assert plan.interlayer_pairs_possible == 2
        assert plan.interlayer_pairs_applied == 2

    def test_last_layer_never_donates(self):
        model = _chain_model()
        spec = AcceleratorSpec(glb_bytes=kib(1024))
        for mode in ("opportunistic", "joint"):
            plan = plan_heterogeneous(
                model, spec, interlayer=True, interlayer_mode=mode
            )
            assert not plan.assignments[-1].donates

    def test_receive_follows_donate(self):
        model = get_model("MnasNet")
        spec = AcceleratorSpec(glb_bytes=kib(512))
        plan = plan_heterogeneous(model, spec, interlayer=True)
        for i, a in enumerate(plan.assignments[:-1]):
            assert plan.assignments[i + 1].receives == a.donates

    def test_donation_only_on_sequential_pairs(self):
        model = get_model("ResNet18")
        spec = AcceleratorSpec(glb_bytes=kib(1024))
        plan = plan_heterogeneous(model, spec, interlayer=True)
        for i, a in enumerate(plan.assignments):
            if a.donates:
                assert model.feeds_next(i)

    def test_memory_still_respected(self):
        model = get_model("MnasNet")
        spec = AcceleratorSpec(glb_bytes=kib(256))
        plan = plan_heterogeneous(model, spec, interlayer=True)
        assert all(a.memory_bytes <= spec.glb_bytes for a in plan.assignments)
