"""Batched inference with cross-item weight reuse."""

import pytest

from repro.analyzer import Objective, batch_sweep, plan_batched, plan_heterogeneous
from repro.arch import AcceleratorSpec, kib
from repro.nn.zoo import get_model


@pytest.fixture(scope="module")
def spec():
    return AcceleratorSpec(glb_bytes=kib(256))


class TestPlanBatched:
    def test_batch1_matches_het_plan(self, spec):
        """At batch 1 the batched planner reduces to Algorithm 1."""
        model = get_model("MobileNet")
        batched = plan_batched(model, spec, 1)
        het = plan_heterogeneous(model, spec)
        assert batched.total_accesses_bytes == het.total_accesses_bytes
        assert batched.total_latency_cycles == pytest.approx(
            het.total_latency_cycles
        )

    def test_per_item_traffic_nonincreasing_in_batch(self, spec):
        model = get_model("ResNet18")
        previous = None
        for batch in (1, 2, 4, 8, 16):
            plan = plan_batched(model, spec, batch)
            if previous is not None:
                assert plan.per_item_accesses_bytes <= previous + 1e-9
            previous = plan.per_item_accesses_bytes

    def test_batching_shifts_to_filter_resident_policies(self, spec):
        model = get_model("MobileNetV2")
        small = plan_batched(model, spec, 1)
        large = plan_batched(model, spec, 16)
        assert large.weight_reuse_coverage >= small.weight_reuse_coverage

    def test_savings_bounded_by_weight_traffic(self, spec):
        """Batching can save at most the filter traffic of the model."""
        model = get_model("ResNet18")
        b1 = plan_batched(model, spec, 1)
        b16 = plan_batched(model, spec, 16)
        max_savings = model.total_weight_elems * spec.bytes_per_elem
        savings = b1.total_accesses_bytes - b16.per_item_accesses_bytes
        assert 0 <= savings <= max_savings

    def test_rejects_bad_batch(self, spec):
        with pytest.raises(ValueError):
            plan_batched(get_model("MobileNet"), spec, 0)

    def test_latency_objective(self, spec):
        model = get_model("MobileNet")
        acc = plan_batched(model, spec, 8, Objective.ACCESSES)
        lat = plan_batched(model, spec, 8, Objective.LATENCY)
        assert lat.total_latency_cycles <= acc.total_latency_cycles + 1e-6


class TestBatchSweep:
    def test_rows_per_batch(self, spec):
        rows = batch_sweep(get_model("MobileNet"), spec, (1, 4))
        assert [r.batch for r in rows] == [1, 4]
        for row in rows:
            assert 0.0 <= row.weight_reuse_coverage <= 1.0
            assert row.per_item_accesses_bytes > 0
