"""MemoryManager facade and plan export."""

import json

import pytest

from repro.analyzer import Objective, load_plan_dict, plan_to_dict, save_plan
from repro.arch import AcceleratorSpec, kib
from repro.manager import BaselineComparison, MemoryManager
from repro.nn import save_model
from repro.nn.zoo import get_model


@pytest.fixture
def manager():
    return MemoryManager(AcceleratorSpec(glb_bytes=kib(64)))


class TestMemoryManager:
    def test_het_plan(self, manager):
        plan = manager.plan(get_model("MobileNet"))
        assert plan.scheme == "het"
        assert plan.objective is Objective.ACCESSES

    def test_hom_plan(self, manager):
        plan = manager.plan(get_model("MobileNet"), scheme="hom")
        assert plan.scheme.startswith("hom(")

    def test_specific_family(self, manager):
        plan = manager.plan(get_model("MobileNet"), scheme="hom(p1)")
        assert plan.scheme == "hom(p1)"

    def test_unknown_scheme(self, manager):
        with pytest.raises(ValueError, match="unknown scheme"):
            manager.plan(get_model("MobileNet"), scheme="magic")

    def test_interlayer_requires_het(self, manager):
        with pytest.raises(ValueError, match="het"):
            manager.plan(get_model("MobileNet"), scheme="hom", interlayer=True)

    def test_latency_objective(self, manager):
        acc = manager.plan(get_model("MobileNet"), Objective.ACCESSES)
        lat = manager.plan(get_model("MobileNet"), Objective.LATENCY)
        assert lat.total_latency_cycles <= acc.total_latency_cycles

    def test_plan_from_file(self, manager, tmp_path):
        path = tmp_path / "model.json"
        save_model(get_model("MobileNet"), path)
        plan = manager.plan_from_file(path)
        assert plan.model.name == "MobileNet"
        direct = manager.plan(get_model("MobileNet"))
        assert plan.total_accesses_bytes == direct.total_accesses_bytes

    def test_evaluate_layer(self, manager):
        evs = manager.evaluate(get_model("MobileNet")[0])
        assert evs
        assert all(ev.memory_bytes <= kib(64) for ev in evs)

    def test_compare_with_baseline(self, manager):
        cmp = manager.compare_with_baseline(get_model("ResNet18"))
        assert isinstance(cmp, BaselineComparison)
        assert set(cmp.baselines) == {"sa_25_75", "sa_50_50", "sa_75_25"}
        assert cmp.accesses_reduction_pct > 50.0  # paper: ~80% at 64 kB
        assert cmp.best_baseline_label in cmp.baselines


class TestPlanExport:
    def test_round_trip_file(self, manager, tmp_path):
        plan = manager.plan(get_model("MobileNet"))
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        data = load_plan_dict(path)
        assert data["model"] == "MobileNet"
        assert len(data["layers"]) == 28
        assert data["totals"]["accesses_bytes"] == plan.total_accesses_bytes

    def test_layer_records_complete(self, manager):
        plan = manager.plan(get_model("MobileNet"), interlayer=True)
        data = plan_to_dict(plan)
        for record, assignment in zip(data["layers"], plan.assignments):
            assert record["layer"] == assignment.layer.name
            assert record["policy"] == assignment.policy_name
            assert record["prefetch"] == assignment.prefetch
            assert record["donates_ofmap_on_chip"] == assignment.donates
            tiles = record["tiles_bytes"]
            assert tiles["ifmap"] >= 0 and tiles["filters"] >= 0

    def test_accelerator_captured(self, manager):
        data = plan_to_dict(manager.plan(get_model("MobileNet")))
        assert data["accelerator"]["glb_bytes"] == kib(64)
        assert data["accelerator"]["ops_per_cycle"] == 512

    def test_json_serializable(self, manager):
        data = plan_to_dict(manager.plan(get_model("MobileNet")))
        json.dumps(data)  # must not raise

    def test_schema_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 42}))
        with pytest.raises(ValueError, match="schema"):
            load_plan_dict(path)
