"""Multi-tenant runtime scheduler."""

import pytest

from repro.analyzer import plan_heterogeneous
from repro.arch import AcceleratorSpec, kib
from repro.nn.zoo import get_model
from repro.runtime import Discipline, Request, schedule


@pytest.fixture(scope="module")
def spec():
    return AcceleratorSpec(glb_bytes=kib(256))


@pytest.fixture(scope="module")
def plans(spec):
    return {
        name: plan_heterogeneous(get_model(name), spec, interlayer=True)
        for name in ("MnasNet", "MobileNet")
    }


class TestSingleRequest:
    def test_matches_plan_totals(self, plans):
        plan = plans["MobileNet"]
        result = schedule([Request("m", plan)])
        outcome = result.outcomes[0]
        assert outcome.completion_cycle == pytest.approx(plan.total_latency_cycles)
        assert outcome.accesses_bytes == plan.total_accesses_bytes
        assert outcome.broken_donations == 0

    def test_round_robin_single_request_no_penalty(self, plans):
        """With one tenant there are no preemptions to break donations."""
        plan = plans["MnasNet"]
        result = schedule([Request("m", plan)], Discipline.ROUND_ROBIN)
        assert result.outcomes[0].broken_donations == 0
        assert result.outcomes[0].accesses_bytes == plan.total_accesses_bytes


class TestTwoTenants:
    def _requests(self, plans):
        return [
            Request("a", plans["MnasNet"]),
            Request("b", plans["MobileNet"]),
        ]

    def test_fcfs_preserves_traffic(self, plans):
        result = schedule(self._requests(plans), Discipline.FCFS)
        expected = sum(p.total_accesses_bytes for p in plans.values())
        assert result.total_accesses_bytes == expected
        assert result.total_broken_donations == 0

    def test_round_robin_breaks_donations(self, plans):
        rr = schedule(self._requests(plans), Discipline.ROUND_ROBIN)
        fcfs = schedule(self._requests(plans), Discipline.FCFS)
        assert rr.total_broken_donations > 0
        assert rr.total_accesses_bytes > fcfs.total_accesses_bytes
        assert rr.makespan_cycles >= fcfs.makespan_cycles

    def test_round_robin_fairer_to_second_tenant(self, plans):
        """The second arrival starts making progress immediately."""
        fcfs = schedule(self._requests(plans), Discipline.FCFS)
        rr = schedule(self._requests(plans), Discipline.ROUND_ROBIN)
        fcfs_b = next(o for o in fcfs.outcomes if o.name == "b")
        rr_b = next(o for o in rr.outcomes if o.name == "b")
        assert rr_b.start_cycle < fcfs_b.start_cycle

    def test_arrival_times_respected(self, plans):
        late = Request("late", plans["MobileNet"], arrival_cycle=1e9)
        early = Request("early", plans["MnasNet"])
        result = schedule([late, early], Discipline.FCFS)
        late_outcome = next(o for o in result.outcomes if o.name == "late")
        assert late_outcome.start_cycle >= 1e9

    def test_makespan_covers_all(self, plans):
        result = schedule(self._requests(plans), Discipline.ROUND_ROBIN)
        assert result.makespan_cycles == max(
            o.completion_cycle for o in result.outcomes
        )

    def test_mean_turnaround(self, plans):
        result = schedule(self._requests(plans), Discipline.FCFS)
        expected = sum(o.turnaround_cycles for o in result.outcomes) / 2
        assert result.mean_turnaround_cycles == pytest.approx(expected)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            schedule([])

    def test_duplicate_names_rejected(self, plans):
        with pytest.raises(ValueError, match="unique"):
            schedule(
                [Request("x", plans["MnasNet"]), Request("x", plans["MobileNet"])]
            )

    def test_negative_arrival_rejected(self, plans):
        with pytest.raises(ValueError):
            Request("x", plans["MnasNet"], arrival_cycle=-1)
