"""Plan verifier: clean plans pass, corrupted plans raise the right codes.

The corruption tests are the verifier's own test oracle: each one takes a
known-good plan, breaks exactly one invariant (via ``dataclasses.replace``
on the frozen plan objects, or ``object.__setattr__`` where a validator
would reject the corruption outright) and asserts that the matching
``V0xx`` diagnostic — and only meaningfully-related ones — appears.
"""

from __future__ import annotations

import copy
from dataclasses import replace

import pytest

from repro.arch import AcceleratorSpec, kib
from repro.manager import MemoryManager
from repro.nn import LayerKind, LayerSpec
from repro.nn.builder import ModelBuilder
from repro.policies import policy_by_name
from repro.sim.glb import Region, layout_plan
from repro.verify import (
    ALL_CODES,
    CODE_DESCRIPTIONS,
    CODE_TITLES,
    Diagnostic,
    DiagnosticCollector,
    PlanVerificationError,
    Severity,
    check_plan,
    describe,
    verify_candidate,
    verify_network,
    verify_plan,
)
from repro.verify.layout_checks import check_layout


# ----------------------------------------------------------------------
# Fixtures: a small model whose het+interlayer plan donates on edge 0→1
# ----------------------------------------------------------------------


def tiny_model():
    b = ModelBuilder("tiny", (32, 32, 16))
    b.conv("c1", f=3, n=32)
    b.pw("p1", n=64)
    b.conv("c2", f=3, n=32, s=2)
    return b.build()


@pytest.fixture(scope="module")
def spec() -> AcceleratorSpec:
    return AcceleratorSpec(glb_bytes=kib(64))


@pytest.fixture(scope="module")
def plan(spec):
    return MemoryManager(spec).plan(tiny_model(), interlayer=True)


@pytest.fixture(scope="module")
def p4_candidate():
    """A dense P4 plan (block_size > 1) for the multiplicity tests."""
    layer = LayerSpec(
        name="big",
        kind=LayerKind.CONV,
        in_h=28,
        in_w=28,
        in_c=64,
        f_h=3,
        f_w=3,
        num_filters=256,
        stride=1,
        padding=1,
    )
    candidate = policy_by_name("p4").plan(layer, budget_elems=20_000, prefetch=False)
    assert candidate is not None and candidate.block_size is not None
    return candidate


def corrupt_candidate(plan, index, candidate):
    """Rebuild ``plan`` with assignment ``index`` using ``candidate``."""
    assignment = plan.assignments[index]
    evaluation = replace(assignment.evaluation, plan=candidate)
    assignments = list(plan.assignments)
    assignments[index] = replace(assignment, evaluation=evaluation)
    return replace(plan, assignments=tuple(assignments))


def corrupt_assignment(plan, index, **changes):
    assignments = list(plan.assignments)
    assignments[index] = replace(assignments[index], **changes)
    return replace(plan, assignments=tuple(assignments))


# ----------------------------------------------------------------------
# Clean plans pass
# ----------------------------------------------------------------------


class TestCleanPlans:
    def test_tiny_plan_verifies(self, plan):
        report = verify_plan(plan)
        assert report.ok
        assert report.checks > 100
        assert report.codes == ()

    def test_plan_actually_donates(self, plan):
        # Precondition for the donation-corruption tests below.
        assert plan.assignments[0].donates and plan.assignments[1].receives

    def test_check_plan_returns_passing_report(self, plan):
        report = check_plan(plan)
        assert report.ok

    def test_candidate_verifies_against_spec_or_budget(self, plan, spec):
        candidate = plan.assignments[0].evaluation.plan
        assert verify_candidate(candidate, spec).ok
        assert verify_candidate(candidate, spec.glb_elems).ok

    def test_verify_network(self, spec):
        outcome = verify_network(tiny_model(), spec, interlayer=True)
        assert outcome.ok
        assert outcome.glb_bytes == spec.glb_bytes
        assert outcome.report.checks > 0

    def test_manager_verify_and_verify_on_plan(self, spec):
        manager = MemoryManager(spec)
        plan = manager.plan(tiny_model(), interlayer=True, verify=True)
        assert manager.verify(plan).ok

    def test_hom_scheme_verifies(self, spec):
        manager = MemoryManager(spec)
        assert manager.verify(manager.plan(tiny_model(), scheme="hom")).ok


# ----------------------------------------------------------------------
# Candidate-level corruptions (V003–V011)
# ----------------------------------------------------------------------


class TestCandidateCorruptions:
    def test_v003_budget_too_small(self, plan):
        candidate = plan.assignments[0].evaluation.plan
        report = verify_candidate(candidate, candidate.memory_elems - 1)
        assert "V003" in report.codes

    def test_v004_ifmap_traffic_mismatch(self, plan, spec):
        candidate = plan.assignments[0].evaluation.plan
        bad = replace(
            candidate,
            traffic=replace(candidate.traffic, ifmap_reads=candidate.traffic.ifmap_reads + 5),
        )
        report = verify_candidate(bad, spec)
        assert "V004" in report.codes

    def test_v005_filter_traffic_mismatch(self, plan, spec):
        candidate = plan.assignments[0].evaluation.plan
        bad = replace(
            candidate,
            traffic=replace(candidate.traffic, filter_reads=candidate.traffic.filter_reads + 3),
        )
        assert "V005" in verify_candidate(bad, spec).codes

    def test_v006_store_traffic_mismatch(self, plan, spec):
        candidate = plan.assignments[0].evaluation.plan
        bad = replace(
            candidate,
            traffic=replace(candidate.traffic, ofmap_writes=candidate.traffic.ofmap_writes + 7),
        )
        assert "V006" in verify_candidate(bad, spec).codes

    def test_v007_mac_loss(self, plan, spec):
        candidate = plan.assignments[0].evaluation.plan
        groups = list(candidate.schedule.groups)
        groups[0] = replace(groups[0], macs=groups[0].macs + 1)
        bad = replace(candidate, schedule=replace(candidate.schedule, groups=tuple(groups)))
        report = verify_candidate(bad, spec)
        assert "V007" in report.codes

    def test_v008_multiplicity_violated(self, p4_candidate, spec):
        # Add the same delta to both the schedule and the declared traffic:
        # V004 (traffic == schedule) still holds, only the paper-table
        # multiplicity (V008) is violated.
        candidate = p4_candidate
        schedule = replace(
            candidate.schedule, resident_ifmap=candidate.schedule.resident_ifmap + 11
        )
        traffic = replace(candidate.traffic, ifmap_reads=candidate.traffic.ifmap_reads + 11)
        bad = replace(candidate, schedule=schedule, traffic=traffic)
        report = verify_candidate(bad, spec)
        assert "V008" in report.codes
        assert "V004" not in report.codes

    def test_v008_missing_block_size(self, p4_candidate, spec):
        bad = replace(p4_candidate, block_size=None)
        assert "V008" in verify_candidate(bad, spec).codes

    def test_v010_negative_traffic(self, plan, spec):
        candidate = plan.assignments[0].evaluation.plan
        traffic = copy.copy(candidate.traffic)
        object.__setattr__(traffic, "ifmap_reads", -1)  # bypass the validator
        bad = replace(candidate, traffic=traffic)
        assert "V010" in verify_candidate(bad, spec).codes

    def test_v011_step_store_exceeds_tile(self, plan, spec):
        candidate = plan.assignments[0].evaluation.plan
        groups = list(candidate.schedule.groups)
        delta = candidate.tiles.ofmap + 1
        groups[0] = replace(groups[0], store=groups[0].store + delta)
        # Keep V006 satisfied so only the per-step bound fails.
        traffic = replace(
            candidate.traffic,
            ofmap_writes=candidate.traffic.ofmap_writes + delta * groups[0].count,
        )
        bad = replace(
            candidate,
            schedule=replace(candidate.schedule, groups=tuple(groups)),
            traffic=traffic,
        )
        report = verify_candidate(bad, spec)
        assert "V011" in report.codes
        assert "V006" not in report.codes


# ----------------------------------------------------------------------
# Plan-level corruptions (V001, V002, V009, V012, V013, V017)
# ----------------------------------------------------------------------


class TestPlanCorruptions:
    def test_v001_and_v003_on_shrunken_glb(self, plan):
        bad = replace(plan, spec=AcceleratorSpec(glb_bytes=kib(1)))
        report = verify_plan(bad, check_layouts=False)
        assert "V001" in report.codes and "V003" in report.codes

    def test_v002_memory_metric_lie(self, plan):
        bad = corrupt_assignment(
            plan, 0, memory_bytes=plan.assignments[0].memory_bytes + 4
        )
        report = verify_plan(bad)
        assert report.codes == ("V002",)

    def test_v009_read_bytes_lie(self, plan):
        bad = corrupt_assignment(plan, 0, read_bytes=plan.assignments[0].read_bytes + 1)
        report = verify_plan(bad)
        assert report.codes == ("V009",)

    def test_v009_latency_lie(self, plan):
        bad = corrupt_assignment(
            plan, 0, latency_cycles=plan.assignments[0].latency_cycles * 1.5 + 1.0
        )
        assert "V009" in verify_plan(bad).codes

    def test_v012_receive_without_donor(self, plan):
        bad = corrupt_assignment(plan, 2, receives=True)
        assert "V012" in verify_plan(bad, check_layouts=False).codes

    def test_v012_donor_without_receiver(self, plan):
        bad = corrupt_assignment(plan, 1, receives=False)
        assert "V012" in verify_plan(bad, check_layouts=False).codes

    def test_v013_donate_on_last_layer(self, plan):
        last = len(plan.assignments) - 1
        bad = corrupt_assignment(plan, last, donates=True)
        assert "V013" in verify_plan(bad, check_layouts=False).codes

    def test_v017_truncated_plan(self, plan):
        bad = copy.copy(plan)
        object.__setattr__(bad, "assignments", plan.assignments[:-1])
        assert "V017" in verify_plan(bad, check_layouts=False).codes

    def test_v017_swapped_assignments(self, plan):
        assignments = list(plan.assignments)
        assignments[0], assignments[1] = assignments[1], assignments[0]
        bad = replace(plan, assignments=tuple(assignments))
        assert "V017" in verify_plan(bad, check_layouts=False).codes

    def test_check_plan_raises_with_report(self, plan):
        bad = corrupt_assignment(
            plan, 0, memory_bytes=plan.assignments[0].memory_bytes + 4
        )
        with pytest.raises(PlanVerificationError) as excinfo:
            check_plan(bad)
        assert "V002" in excinfo.value.report.codes
        assert "V002" in str(excinfo.value)

    def test_verify_on_plan_mode_raises(self, plan, spec):
        # The manager's verify=True path goes through the same raising
        # check; a healthy plan must pass it (exercised in TestCleanPlans),
        # and a corrupted spec must not slip through verify_plan.
        bad = replace(plan, spec=AcceleratorSpec(glb_bytes=kib(1)))
        with pytest.raises(PlanVerificationError):
            check_plan(bad)


# ----------------------------------------------------------------------
# Layout-level corruptions (V014, V015, V016)
# ----------------------------------------------------------------------


class TestLayoutCorruptions:
    def test_v014_unrealizable_layout(self, plan):
        bad = replace(plan, spec=AcceleratorSpec(glb_bytes=kib(1)))
        assert "V014" in verify_plan(bad).codes

    def test_v015_region_out_of_bounds(self, plan):
        layouts = list(layout_plan(plan))
        regions = list(layouts[0].regions)
        regions[0] = replace(regions[0], offset=plan.spec.glb_bytes)
        layouts[0] = replace(layouts[0], regions=tuple(regions))
        out = DiagnosticCollector(subject="corrupted layout")
        check_layout(out, plan, layouts=layouts)
        assert "V015" in out.report().codes

    def test_v015_region_overlap(self, plan):
        layouts = list(layout_plan(plan))
        regions = list(layouts[0].regions)
        assert len(regions) >= 2
        regions[1] = replace(regions[1], offset=regions[0].offset)
        layouts[0] = replace(layouts[0], regions=tuple(regions))
        out = DiagnosticCollector(subject="corrupted layout")
        check_layout(out, plan, layouts=layouts)
        assert "V015" in out.report().codes

    def test_v016_donated_region_moved(self, plan):
        layouts = list(layout_plan(plan))
        receiver = layouts[1]
        donated = receiver.region("ifmap(donated)")
        regions = tuple(
            replace(r, offset=r.offset + plan.spec.bytes_per_elem)
            if r.name == "ifmap(donated)"
            else r
            for r in receiver.regions
        )
        layouts[1] = replace(receiver, regions=regions)
        out = DiagnosticCollector(subject="corrupted layout")
        check_layout(out, plan, layouts=layouts)
        report = out.report()
        assert "V016" in report.codes
        assert donated.offset == layouts[0].donated_offset

    def test_v016_donated_region_missing(self, plan):
        layouts = list(layout_plan(plan))
        receiver = layouts[1]
        regions = tuple(
            replace(r, name="ifmap") if r.name == "ifmap(donated)" else r
            for r in receiver.regions
        )
        layouts[1] = replace(receiver, regions=regions)
        out = DiagnosticCollector(subject="corrupted layout")
        check_layout(out, plan, layouts=layouts)
        assert "V016" in out.report().codes

    def test_clean_layout_recheck_passes(self, plan):
        out = DiagnosticCollector(subject="clean layout")
        check_layout(out, plan, layouts=layout_plan(plan))
        assert out.report().ok


# ----------------------------------------------------------------------
# Diagnostics machinery and the code catalog
# ----------------------------------------------------------------------


class TestDiagnostics:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="V999", message="nope")

    def test_render_mentions_code_layer_and_values(self):
        diag = Diagnostic(
            code="V001",
            message="too big",
            layer_index=3,
            layer_name="conv4",
            policy="p2+p",
            expected=10,
            actual=20,
        )
        text = diag.render()
        assert "V001" in text and "conv4" in text and "p2+p" in text
        assert "expected 10" in text and "actual 20" in text
        assert diag.title == "capacity exceeded"

    def test_collector_counts_checks(self):
        out = DiagnosticCollector(subject="s")
        assert out.check(True, "V001", "fine")
        assert not out.check(False, "V002", "broken")
        report = out.report()
        assert report.checks == 2
        assert not report.ok
        assert report.by_code("V002")[0].message == "broken"
        assert len(report) == 1 and list(report)[0].code == "V002"

    def test_warnings_do_not_fail(self):
        out = DiagnosticCollector(subject="s")
        out.check(False, "V010", "suspicious", severity=Severity.WARNING)
        report = out.report()
        assert report.ok
        assert report.warnings and not report.errors
        report.raise_if_failed()  # must not raise

    def test_report_render_headline(self):
        out = DiagnosticCollector(subject="net/het @ 64 kB")
        out.check(True, "V001", "fine")
        text = out.report().render()
        assert text.startswith("net/het @ 64 kB: OK (1 checks")

    def test_catalog_is_consistent(self):
        assert set(CODE_TITLES) == set(CODE_DESCRIPTIONS)
        assert ALL_CODES == tuple(sorted(CODE_TITLES))
        assert all(code.startswith("V") and len(code) == 4 for code in ALL_CODES)
        assert describe("V001")
        with pytest.raises(KeyError):
            describe("V999")

    def test_docs_mirror_the_catalog(self):
        from pathlib import Path

        doc = (Path(__file__).parent.parent / "docs" / "verification.md").read_text()
        for code, title in CODE_TITLES.items():
            assert f"| {code} | {title} |" in doc, f"{code} missing from docs"
        # No stale codes either: every Vxxx token in the doc is cataloged.
        import re

        for code in set(re.findall(r"\bV\d{3}\b", doc)):
            assert code in CODE_TITLES, f"docs mention unknown code {code}"

    def test_every_code_is_triggerable_or_documented(self):
        # The corruption tests above cover every catalog code; guard the
        # list so a new code cannot be added without a matching test.
        covered = {
            "V001", "V002", "V003", "V004", "V005", "V006", "V007", "V008",
            "V009", "V010", "V011", "V012", "V013", "V014", "V015", "V016",
            "V017", "V018", "V019",
        }
        assert covered == set(ALL_CODES)


# ----------------------------------------------------------------------
# DRAM-level checks (V018/V019)
# ----------------------------------------------------------------------


class TestDramChecks:
    """V018/V019 run only for DRAM-backed plans and catch backend lies.

    The backend cannot be corrupted through the plan object (the verifier
    re-simulates from the schedule), so these tests stub the simulation
    the checker calls and hand it inconsistent statistics.
    """

    @pytest.fixture(scope="class")
    def dram_plan(self, spec):
        from repro.dram import DEFAULT_DDR4_SPEC

        manager = MemoryManager(spec.with_dram(DEFAULT_DDR4_SPEC))
        return manager.plan(tiny_model(), interlayer=True)

    def test_dram_backed_plan_verifies(self, dram_plan):
        report = verify_plan(dram_plan)
        assert report.ok

    def test_flat_plan_skips_dram_checks(self, plan, dram_plan):
        # Same model and GLB; the DRAM-backed plan runs strictly more checks.
        assert verify_plan(dram_plan).checks > verify_plan(plan).checks

    def test_v018_fires_on_too_fast_timing(self, dram_plan, monkeypatch):
        import repro.verify.dram_checks as dram_checks

        real = dram_checks.simulate_schedule

        def too_fast(schedule, layer, b, dram, mapping=None):
            stats = real(schedule, layer, b, dram, mapping)
            return replace(stats, cycles=stats.ideal_cycles * 0.5)

        monkeypatch.setattr(dram_checks, "simulate_schedule", too_fast)
        report = verify_plan(dram_plan)
        assert "V018" in report.codes

    def test_v019_fires_on_inconsistent_stats(self, dram_plan, monkeypatch):
        import repro.verify.dram_checks as dram_checks

        real = dram_checks.simulate_schedule

        def extra_activation(schedule, layer, b, dram, mapping=None):
            stats = real(schedule, layer, b, dram, mapping)
            return replace(stats, activations=stats.activations + 1)

        monkeypatch.setattr(dram_checks, "simulate_schedule", extra_activation)
        report = verify_plan(dram_plan)
        assert "V019" in report.codes
        assert "V018" not in report.codes


# ----------------------------------------------------------------------
# CLI subcommand
# ----------------------------------------------------------------------


class TestVerifyCli:
    def test_list_codes(self, capsys):
        from repro.cli import main

        assert main(["verify", "--list-codes"]) == 0
        out = capsys.readouterr().out
        for code in ALL_CODES:
            assert code in out

    def test_verify_one_model(self, capsys):
        from repro.cli import main

        assert main(["verify", "ResNet18", "--glb", "64"]) == 0
        out = capsys.readouterr().out
        assert "ResNet18" in out and "ok" in out.lower()

    def test_verify_requires_model_or_all(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["verify"])
