"""Extensions: extended zoo, resolution override, Pareto, charts, compat."""

import pytest

from repro.analyzer import ParetoPoint, pareto_frontier, plan_heterogeneous, plan_weighted
from repro.arch import AcceleratorSpec, kib
from repro.nn import LayerKind
from repro.nn.zoo import ALL_MODEL_NAMES, PAPER_MODEL_NAMES, get_model
from repro.report import BarChart, bar_chart, sparkline
from repro.scalesim import (
    ScaleSimConfig,
    baseline_config,
    lower_model,
    save_topology,
    simulate,
)
from repro.scalesim.compat import (
    load_scalesim_cfg,
    load_topology_csv,
    save_scalesim_cfg,
)


class TestExtendedZoo:
    def test_registry_includes_extensions(self):
        assert set(PAPER_MODEL_NAMES) < set(ALL_MODEL_NAMES)
        assert {"AlexNet", "VGG16", "SqueezeNet"} <= set(ALL_MODEL_NAMES)

    def test_vgg16_textbook_numbers(self):
        model = get_model("VGG16")
        assert model.num_layers == 16
        assert model.total_weight_elems == pytest.approx(138.3e6, rel=0.01)
        assert model.total_macs == pytest.approx(15.5e9, rel=0.01)

    def test_alexnet_shapes(self):
        model = get_model("AlexNet")
        assert model.num_layers == 8
        conv1 = model.find("conv1")
        assert (conv1.out_h, conv1.out_c) == (55, 96)
        assert model.find("fc6").in_c == 6 * 6 * 256

    def test_squeezenet_fire_concat(self):
        model = get_model("SqueezeNet")
        # fire2 outputs 64+64=128 channels consumed by fire3's squeeze.
        assert model.find("fire3_squeeze").in_c == 128
        assert model.kind_histogram()[LayerKind.POINTWISE] > 10

    def test_extended_models_plan(self):
        spec = AcceleratorSpec(glb_bytes=kib(128))
        for name in ("AlexNet", "VGG16", "SqueezeNet"):
            plan = plan_heterogeneous(get_model(name), spec)
            assert plan.max_memory_bytes <= spec.glb_bytes

    def test_resolution_override(self):
        small = get_model("ResNet18", input_size=160)
        native = get_model("ResNet18")
        assert small[0].in_h == 160
        assert small.num_layers == native.num_layers
        assert small.total_macs < native.total_macs
        # Weights are resolution-independent.
        assert small.total_weight_elems == native.total_weight_elems

    def test_resolution_override_cached_separately(self):
        assert get_model("MobileNet", input_size=192) is get_model(
            "MobileNet", input_size=192
        )
        assert get_model("MobileNet", input_size=192) is not get_model("MobileNet")


class TestPareto:
    @pytest.fixture(scope="class")
    def frontier(self):
        return pareto_frontier(
            get_model("MobileNet"), AcceleratorSpec(glb_bytes=kib(64)), num_points=7
        )

    def test_endpoints_match_objectives(self, frontier):
        spec = AcceleratorSpec(glb_bytes=kib(64))
        model = get_model("MobileNet")
        from repro.analyzer import Objective

        het_a = plan_heterogeneous(model, spec, Objective.ACCESSES)
        het_l = plan_heterogeneous(model, spec, Objective.LATENCY)
        assert frontier[0].accesses_bytes == het_a.total_accesses_bytes
        assert frontier[-1].latency_cycles == pytest.approx(
            het_l.total_latency_cycles, rel=1e-9
        )

    def test_frontier_sorted_and_nondominated(self, frontier):
        for a, b in zip(frontier, frontier[1:]):
            assert a.accesses_bytes <= b.accesses_bytes
            assert a.latency_cycles >= b.latency_cycles  # trade-off shape
        for p in frontier:
            assert not any(q.dominates(p) for q in frontier if q is not p)

    def test_frontier_has_intermediate_points(self, frontier):
        assert len(frontier) >= 3  # a real trade-off, not just endpoints

    def test_weighted_plan_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            plan_weighted(
                get_model("MobileNet"), AcceleratorSpec(glb_bytes=kib(64)), 1.5
            )

    def test_num_points_validation(self):
        with pytest.raises(ValueError):
            pareto_frontier(
                get_model("MobileNet"), AcceleratorSpec(glb_bytes=kib(64)), 1
            )

    def test_dominates(self):
        plan = plan_heterogeneous(
            get_model("MobileNet"), AcceleratorSpec(glb_bytes=kib(64))
        )
        a = ParetoPoint(0, 10, 10.0, plan)
        b = ParetoPoint(0, 12, 10.0, plan)
        c = ParetoPoint(0, 10, 10.0, plan)
        assert a.dominates(b)
        assert not a.dominates(c)


class TestCharts:
    def test_bar_chart_renders_all_entries(self):
        chart = bar_chart("T", ["a", "b"], {"x": [1.0, 2.0], "y": [3.0, 4.0]})
        text = chart.render()
        assert "T" in text
        assert text.count("|") == 4
        assert "legend:" in text

    def test_bar_chart_arity_checked(self):
        with pytest.raises(ValueError):
            bar_chart("T", ["a", "b"], {"x": [1.0]})

    def test_negative_rejected(self):
        chart = BarChart(title="T")
        with pytest.raises(ValueError):
            chart.add("g", "s", -1.0)

    def test_empty_chart(self):
        assert "(no data)" in BarChart(title="T").render()

    def test_sparkline(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([]) == ""
        assert len(sparkline(list(range(100)), width=10)) == 10


class TestScaleSimCompat:
    def test_cfg_round_trip(self, tmp_path):
        config = baseline_config(kib(128), 0.25)
        path = tmp_path / "arch.cfg"
        save_scalesim_cfg(config, path)
        loaded = load_scalesim_cfg(path)
        assert loaded.array_rows == config.array_rows
        assert loaded.ifmap_buf_bytes == (config.ifmap_buf_bytes // 1024) * 1024
        assert loaded.dataflow == config.dataflow

    def test_cfg_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_scalesim_cfg(tmp_path / "nope.cfg")

    def test_cfg_missing_section(self, tmp_path):
        path = tmp_path / "bad.cfg"
        path.write_text("[general]\nrun_name = x\n")
        with pytest.raises(ValueError, match="architecture_presets"):
            load_scalesim_cfg(path)

    def test_topology_round_trip(self, tmp_path):
        model = get_model("MobileNet")
        path = tmp_path / "topo.csv"
        save_topology(model, path)
        loaded = load_topology_csv(path, "MobileNet")
        assert len(loaded) == len(model)
        # The GEMM lowering of the round-tripped model matches.
        original = lower_model(model)
        recovered = lower_model(loaded)
        for a, b in zip(original, recovered):
            assert (a.sr, a.sc, a.k) == (b.sr, b.sc, b.k), a.name

    def test_topology_kind_inference(self, tmp_path):
        model = get_model("MobileNet")
        path = tmp_path / "topo.csv"
        save_topology(model, path)
        loaded = load_topology_csv(path)
        kinds = [layer.kind for layer in loaded.layers]
        assert kinds[0] is LayerKind.CONV
        assert LayerKind.DEPTHWISE in kinds
        assert LayerKind.POINTWISE in kinds
        assert kinds[-1] is LayerKind.FC

    def test_topology_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("header\nonly, three, fields\n")
        with pytest.raises(ValueError, match="malformed"):
            load_topology_csv(path)


class TestDeepResNets:
    def test_resnet50_textbook_numbers(self):
        model = get_model("ResNet50")
        assert model.num_layers == 54  # 48 convs + 4 projections + stem + fc
        assert model.total_weight_elems == pytest.approx(25.5e6, rel=0.02)
        assert model.total_macs == pytest.approx(4.1e9, rel=0.10)

    def test_resnet34_textbook_numbers(self):
        model = get_model("ResNet34")
        assert model.num_layers == 37  # 32 convs + 3 projections + stem + fc
        assert model.total_weight_elems == pytest.approx(21.8e6, rel=0.02)
        assert model.total_macs == pytest.approx(3.6e9, rel=0.05)

    def test_resnet50_plans_at_64k(self):
        spec = AcceleratorSpec(glb_bytes=kib(64))
        plan = plan_heterogeneous(get_model("ResNet50"), spec)
        assert plan.max_memory_bytes <= spec.glb_bytes


class TestStallAwareBaseline:
    def test_stalls_never_reduce_latency(self):
        cfg = baseline_config(kib(64), 0.5)
        result = simulate(get_model("ResNet18"), cfg)
        assert result.total_cycles_with_stalls(16.0) >= result.total_cycles

    def test_infinite_bandwidth_recovers_zero_stall(self):
        cfg = baseline_config(kib(64), 0.5)
        result = simulate(get_model("MobileNet"), cfg)
        assert result.total_cycles_with_stalls(1e12) == pytest.approx(
            result.total_cycles
        )

    def test_bandwidth_validation(self):
        cfg = baseline_config(kib(64), 0.5)
        result = simulate(get_model("MobileNet"), cfg)
        with pytest.raises(ValueError):
            result.total_cycles_with_stalls(0)
