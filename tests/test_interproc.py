"""Tests for the interprocedural analysis layer.

Covers: the project-wide call graph (qualnames, import/re-export
resolution, method dispatch, decorator transparency, reference edges),
the unit lattice and its transfer functions, the unit-flow rules
(R040–R044) and determinism-reachability rules (R050–R053) on seeded
fixture packages, the SARIF 2.1.0 export, content-addressed baseline
fingerprints, and the lint wall-time budget.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import Finding, analyze_paths
from repro.analysis.callgraph import build_callgraph, module_name
from repro.analysis.rules import Project, SourceFile
from repro.analysis.unitflow import (
    divide_units,
    join_units,
    multiply_units,
    name_unit,
)
from repro.cli import main
from repro.report.diagnostics import validate_sarif_payload
from repro.report.sarif import FINGERPRINT_KEY, sarif_payload

REPO_ROOT = Path(__file__).resolve().parent.parent


def active_codes(findings) -> set[str]:
    """Codes of the findings that still gate."""
    return {f.code for f in findings if f.active}


def mini_project(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write a throwaway project (with a pyproject.toml root marker)."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname='fixture'\n")
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return tmp_path


def parse_project(files: dict[str, str]) -> Project:
    """Build an in-memory Project from {relpath: source} (no disk)."""
    sources = tuple(
        SourceFile.parse(Path(rel), rel, text) for rel, text in files.items()
    )
    return Project(root=Path("."), files=sources)


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------


def test_module_name_strips_src_and_init() -> None:
    assert module_name("src/repro/experiments/cache.py") == "repro.experiments.cache"
    assert module_name("src/repro/obs/__init__.py") == "repro.obs"
    assert module_name("pkg/mod.py") == "pkg.mod"


def test_callgraph_direct_and_imported_calls() -> None:
    project = parse_project(
        {
            "pkg/__init__.py": "",
            "pkg/a.py": "def helper():\n    return 1\n\ndef top():\n    return helper()\n",
            "pkg/b.py": "from pkg.a import helper\n\ndef caller():\n    return helper()\n",
        }
    )
    graph = build_callgraph(project)
    assert "pkg.a.helper" in graph.callees("pkg.a.top")
    assert "pkg.a.helper" in graph.callees("pkg.b.caller")


def test_callgraph_relative_import_and_reexport() -> None:
    project = parse_project(
        {
            "pkg/__init__.py": "from .inner import worker\n",
            "pkg/inner.py": "def worker():\n    return 0\n",
            "pkg/user.py": (
                "from . import worker\n"
                "from .inner import worker as w2\n"
                "def a():\n    return worker()\n"
                "def b():\n    return w2()\n"
            ),
            "other.py": "import pkg\n\ndef c():\n    return pkg.worker()\n",
        }
    )
    graph = build_callgraph(project)
    assert "pkg.inner.worker" in graph.callees("pkg.user.a")
    assert "pkg.inner.worker" in graph.callees("pkg.user.b")
    # attribute access through the package re-export resolves too
    assert "pkg.inner.worker" in graph.callees("other.c")


def test_callgraph_method_dispatch_and_qualnames() -> None:
    project = parse_project(
        {
            "pkg/m.py": (
                "class Manager:\n"
                "    def plan(self):\n"
                "        return self._inner()\n"
                "    def _inner(self):\n"
                "        return 1\n"
            ),
        }
    )
    graph = build_callgraph(project)
    assert "pkg.m.Manager.plan" in graph.functions
    assert graph.functions["pkg.m.Manager.plan"].is_method
    assert "pkg.m.Manager._inner" in graph.callees("pkg.m.Manager.plan")


def test_callgraph_decorated_functions_keep_identity() -> None:
    project = parse_project(
        {
            "pkg/d.py": (
                "import functools\n"
                "from functools import lru_cache\n"
                "@lru_cache(maxsize=None)\n"
                "def cached():\n    return 1\n"
                "@functools.wraps(cached)\n"
                "def wrapper():\n    return cached()\n"
                "def entry():\n    return wrapper()\n"
            ),
        }
    )
    graph = build_callgraph(project)
    assert "pkg.d.cached" in graph.callees("pkg.d.wrapper")
    assert "pkg.d.wrapper" in graph.callees("pkg.d.entry")


def test_callgraph_reference_edges_for_escaping_functions() -> None:
    project = parse_project(
        {
            "pkg/p.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def worker(x):\n    return x\n"
                "def init():\n    pass\n"
                "def run():\n"
                "    with ProcessPoolExecutor(initializer=init) as pool:\n"
                "        return pool.submit(worker, 1)\n"
            ),
        }
    )
    graph = build_callgraph(project)
    assert "pkg.p.worker" in graph.callees("pkg.p.run")
    assert "pkg.p.init" in graph.callees("pkg.p.run")


def test_callgraph_reachability_witness_chain() -> None:
    project = parse_project(
        {
            "pkg/r.py": (
                "def c():\n    return 0\n"
                "def b():\n    return c()\n"
                "def a():\n    return b()\n"
            ),
        }
    )
    graph = build_callgraph(project)
    chains = graph.reachable_from({"pkg.r.a"})
    assert chains["pkg.r.c"] == ("pkg.r.a", "pkg.r.b", "pkg.r.c")


# ----------------------------------------------------------------------
# Unit lattice
# ----------------------------------------------------------------------


def test_name_unit_suffixes_and_rates() -> None:
    assert name_unit("tile_bytes") == "bytes"
    assert name_unit("nbytes") == "bytes"
    assert name_unit("glb_kb") == "kib"
    assert name_unit("energy_pj") == "pj"
    assert name_unit("bytes_per_cycle") == "rate:bytes/cycles"
    assert name_unit("bytes_per_elem") == "rate:bytes/elems"
    assert name_unit("alpha") is None


def test_unit_transfer_functions() -> None:
    assert join_units("bytes", "bytes") == "bytes"
    assert join_units("bytes", "unitless") == "bytes"
    assert join_units("bytes", "elems") is None  # conflict → unknown result
    assert multiply_units("elems", "bytes") == "bytes"
    assert multiply_units("cycles", "rate:bytes/cycles") == "bytes"
    assert divide_units("bytes", "bytes") == "unitless"
    assert divide_units("bytes", "elems") == "rate:bytes/elems"
    assert divide_units("bytes", "rate:bytes/cycles") == "cycles"
    assert divide_units("bytes", None) is None  # unknown normalizer


# ----------------------------------------------------------------------
# Unit-flow rules (R040–R044)
# ----------------------------------------------------------------------


def test_r040_fires_on_cross_module_unit_mismatch(tmp_path: Path) -> None:
    """A _bytes value crossing a call boundary into an _elems parameter."""
    root = mini_project(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/size.py": (
                "def tile_bytes(n: int) -> int:\n"
                "    return n * 4\n"
            ),
            "pkg/plan.py": (
                "from pkg.size import tile_bytes\n"
                "def place(tile_elems: int) -> int:\n"
                "    return tile_elems\n"
                "def plan(n: int) -> int:\n"
                "    return place(tile_bytes(n))\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R040" in active_codes(report)
    (finding,) = [f for f in report if f.code == "R040"]
    assert "tile_elems" in finding.message and "bytes" in finding.message


def test_r041_fires_on_return_boundary_mismatch(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/x.py": (
                "def glb_bytes(n_elems: int) -> int:\n"
                "    return n_elems\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R041" in active_codes(report)


def test_r042_fires_on_cross_unit_assignment(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/x.py": (
                "def f(n_elems: int) -> int:\n"
                "    total_bytes = n_elems\n"
                "    return total_bytes\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R042" in active_codes(report)


def test_r043_fires_only_where_suffixes_cannot_see(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/a.py": "def footprint_bytes() -> int:\n    return 64\n",
            "pkg/b.py": (
                "from pkg.a import footprint_bytes\n"
                "def latency_cycles() -> int:\n    return 10\n"
                "def mix() -> int:\n"
                "    total = footprint_bytes() + latency_cycles()\n"
                "    return total\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R043" in active_codes(report)
    # suffix-visible mixes stay R001's business
    assert all(
        f.code != "R043" or "footprint_bytes()" in f.message for f in report
    )


def test_r044_fires_on_cast_misuse(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/arch/__init__.py": "",
            "pkg/arch/units.py": (
                "def kib(n: int) -> int:\n"
                "    return n * 1024\n"
                "def to_kib(nbytes: int) -> int:\n"
                "    return nbytes // 1024\n"
            ),
            "pkg/use.py": (
                "from pkg.arch.units import kib, to_kib\n"
                "def wrong(n_elems: int, buf_bytes: int) -> int:\n"
                "    return to_kib(n_elems) + kib(buf_bytes)\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r044 = [f for f in report if f.code == "R044" and f.active]
    assert len(r044) == 2  # to_kib(elems) and kib(bytes) both flagged
    # the helpers themselves are sanctioned: no R041 on their bodies
    assert not any(
        f.code == "R041" and "units.py" in f.path for f in report
    )


def test_unitflow_clean_on_consistent_units(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/a.py": "def tile_bytes(n_elems: int) -> int:\n    return n_elems * 4\n",
            "pkg/b.py": (
                "from pkg.a import tile_bytes\n"
                "def fits(budget_bytes: int, n_elems: int) -> bool:\n"
                "    return tile_bytes(n_elems) <= budget_bytes\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert not active_codes(report) & {"R040", "R041", "R042", "R043", "R044"}


# ----------------------------------------------------------------------
# Determinism-reachability rules (R050–R053)
# ----------------------------------------------------------------------


def test_r050_fires_on_rng_reachable_from_key_path(tmp_path: Path) -> None:
    """random.random() two calls below make_key must fire with a chain."""
    root = mini_project(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/noise.py": (
                "import random\n"
                "def jitter():\n"
                "    return random.random()\n"
            ),
            "pkg/keys.py": (
                "from pkg.noise import jitter\n"
                "def salt():\n"
                "    return jitter()\n"
                "def make_key(name: str) -> str:\n"
                "    return f'{name}-{salt()}'\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r050 = [f for f in report if f.code == "R050" and f.active]
    assert r050, "reachable RNG must fire R050"
    assert any(
        "make_key" in f.message and "->" in f.message for f in r050
    ), "finding must carry the witness call chain"


def test_r051_fires_on_reachable_env_read(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/cfg.py": (
                "import os\n"
                "def lookup():\n"
                "    return os.environ.get('KNOB')\n"
                "def plan_cached():\n"
                "    return lookup()\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R051" in active_codes(report)


def test_r052_r053_fire_on_helpers_below_key_functions(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/ser.py": (
                "import json\n"
                "def gather(items):\n"
                "    return [x for x in set(items)]\n"
                "def encode(payload):\n"
                "    return json.dumps(payload)\n"
                "def cache_key(items, payload):\n"
                "    return str(gather(items)) + encode(payload)\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    codes = active_codes(report)
    assert "R052" in codes and "R053" in codes
    # helpers are not digest-named, so the per-file rules stay silent
    assert "R013" not in codes and "R014" not in codes


def test_r050_noqa_at_source_line_suppresses(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/k.py": (
                "import random\n"
                "def make_key():\n"
                "    return random.random()  "
                "# repro: noqa[R010,R050] -- test seam\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert not active_codes(report) & {"R010", "R050"}
    assert {"R010", "R050"} <= {f.code for f in report.suppressed}


def test_pool_workers_are_determinism_roots(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/w.py": (
                "import time\n"
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def work(x):\n"
                "    return time.time()\n"
                "def run():\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return pool.submit(work, 1)\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    r050 = [f for f in report if f.code == "R050" and f.active]
    assert any("work" in f.message for f in r050)


def test_reachability_clean_when_hazard_not_reachable(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/x.py": (
                "import random\n"
                "def shuffle_demo():\n"
                "    return random.random()\n"
                "def make_key(name: str) -> str:\n"
                "    return name\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    assert "R050" not in active_codes(report)  # R010 still fires, R050 not


# ----------------------------------------------------------------------
# SARIF export
# ----------------------------------------------------------------------


def test_sarif_payload_validates_and_carries_fingerprints(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/x.py": (
                "def f(a_bytes: int, b_elems: int) -> int:\n"
                "    return a_bytes + b_elems\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    payload = sarif_payload(report)
    assert validate_sarif_payload(payload) == []
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    result = next(r for r in run["results"] if r["ruleId"] == "R001")
    fp = result["partialFingerprints"][FINGERPRINT_KEY]
    (finding,) = [f for f in report if f.code == "R001"]
    assert fp == finding.fingerprint()
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert "R001" in rule_ids


def test_sarif_marks_suppressed_findings(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/x.py": (
                "def f(a_bytes: int, b_elems: int) -> int:\n"
                "    return a_bytes + b_elems  # repro: noqa[R001] -- ok\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    payload = sarif_payload(report)
    result = next(
        r for r in payload["runs"][0]["results"] if r["ruleId"] == "R001"
    )
    assert result["suppressions"][0]["kind"] == "inSource"


def test_sarif_cli_output_validates(tmp_path: Path, capsys) -> None:
    root = mini_project(
        tmp_path, {"pkg/x.py": "def f():\n    return 1\n"}
    )
    code = main(["lint", str(root), "--format", "sarif"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert validate_sarif_payload(payload) == []
    assert payload["version"] == "2.1.0"


def test_sarif_validator_rejects_malformed() -> None:
    assert validate_sarif_payload({"version": "2.1.0"})  # no runs
    bad = {
        "version": "2.0.0",
        "runs": [
            {
                "tool": {"driver": {"name": "x", "rules": []}},
                "results": [{"ruleId": 5}],
            }
        ],
    }
    problems = validate_sarif_payload(bad)
    assert any("version" in p for p in problems)
    assert any("ruleId" in p for p in problems)


# ----------------------------------------------------------------------
# Content-addressed fingerprints
# ----------------------------------------------------------------------


def test_fingerprint_survives_line_and_message_changes() -> None:
    a = Finding(
        code="R010", path="m.py", line=3, message="old wording",
        snippet="    x = random.random()",
    )
    b = Finding(
        code="R010", path="m.py", line=99, message="new wording",
        snippet="x = random.random()",  # re-indented
    )
    assert a.fingerprint() == b.fingerprint()
    changed = Finding(
        code="R010", path="m.py", line=3, message="old wording",
        snippet="x = random.SystemRandom().random()",
    )
    assert a.fingerprint() != changed.fingerprint()


def test_findings_carry_source_snippets(tmp_path: Path) -> None:
    root = mini_project(
        tmp_path,
        {
            "pkg/x.py": (
                "def f(a_bytes: int, b_elems: int) -> int:\n"
                "    return a_bytes + b_elems\n"
            ),
        },
    )
    report = analyze_paths([root], root=root, use_baseline=False)
    (finding,) = [f for f in report if f.code == "R001"]
    assert finding.snippet.strip() == "return a_bytes + b_elems"
    assert finding.normalized_snippet() == "return a_bytes + b_elems"


# ----------------------------------------------------------------------
# Wall-time budget
# ----------------------------------------------------------------------


def test_report_measures_wall_time(tmp_path: Path) -> None:
    root = mini_project(tmp_path, {"pkg/x.py": "def f():\n    return 1\n"})
    report = analyze_paths([root], root=root, use_baseline=False)
    assert report.duration_seconds > 0.0
    assert "wall time" in report.render()


def test_cli_max_seconds_budget_gates(tmp_path: Path, capsys) -> None:
    root = mini_project(tmp_path, {"pkg/x.py": "def f():\n    return 1\n"})
    assert main(["lint", str(root), "--max-seconds", "60"]) == 0
    assert main(["lint", str(root), "--max-seconds", "0.000001"]) == 1
    assert "exceeds" in capsys.readouterr().err
