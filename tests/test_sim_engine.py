"""Step-level simulator: expansion, timing, traces, cross-checks."""

import pytest

from repro.analyzer import Objective, make_assignment, plan_heterogeneous
from repro.arch import AcceleratorSpec, kib
from repro.estimators import evaluate_layer, schedule_latency
from repro.nn.zoo import get_model
from repro.policies import LayerSchedule, StepGroup
from repro.sim import (
    TraceEvent,
    crosscheck_plan,
    expand_schedule,
    simulate_assignment,
    simulate_plan,
)

SPEC = AcceleratorSpec(glb_bytes=kib(1024))


class TestExpandSchedule:
    def test_expansion_counts(self):
        s = LayerSchedule(
            groups=(StepGroup(count=3, ifmap=1, macs=2), StepGroup(count=2, store=4))
        )
        steps = list(expand_schedule(s))
        assert len(steps) == 5
        assert steps[0].ifmap == 1 and steps[0].load == 1
        assert steps[4].store == 4

    def test_cap_enforced(self):
        s = LayerSchedule(groups=(StepGroup(count=100, macs=1),))
        with pytest.raises(ValueError, match="max_steps"):
            list(expand_schedule(s, max_steps=10))


class TestAssignmentSimulation:
    def _assignment(self, layer, spec, label=None):
        evs = evaluate_layer(layer, spec)
        ev = evs[0] if label is None else next(e for e in evs if e.label == label)
        return make_assignment(0, ev, spec), ev

    def test_traffic_counted_exactly(self, conv_layer):
        assignment, ev = self._assignment(conv_layer, SPEC)
        result = simulate_assignment(assignment, SPEC)
        b = SPEC.bytes_per_elem
        assert result.dram_total_elems * b == ev.accesses_bytes

    def test_latency_matches_estimator(self, conv_layer):
        for ev in evaluate_layer(conv_layer, SPEC):
            assignment = make_assignment(0, ev, SPEC)
            result = simulate_assignment(assignment, SPEC)
            assert result.cycles == pytest.approx(ev.latency_cycles, rel=1e-6)

    def test_receives_removes_ifmap_traffic(self, conv_layer):
        evs = evaluate_layer(conv_layer, SPEC)
        ev = evs[0]
        plain = simulate_assignment(make_assignment(0, ev, SPEC), SPEC)
        received = simulate_assignment(
            make_assignment(0, ev, SPEC, receives=True), SPEC
        )
        assert (
            plain.dram_load_elems - received.dram_load_elems
            == ev.plan.traffic.ifmap_reads
        )

    def test_trace_events_recorded(self, small_conv):
        ev = evaluate_layer(small_conv, SPEC)[0]
        trace: list[TraceEvent] = []
        simulate_assignment(make_assignment(0, ev, SPEC), SPEC, record_trace=trace)
        assert trace
        kinds = {e.kind for e in trace}
        assert kinds <= {"load_resident", "load_ifmap", "load_filters", "store"}
        moved = sum(e.elems for e in trace)
        assert moved == ev.plan.traffic.total

    def test_trace_times_nondecreasing_per_kind(self, small_conv):
        ev = evaluate_layer(small_conv, SPEC)[0]
        trace: list[TraceEvent] = []
        simulate_assignment(make_assignment(0, ev, SPEC), SPEC, record_trace=trace)
        stores = [e.time for e in trace if e.kind == "store"]
        assert stores == sorted(stores)

    def test_compute_busy_matches_macs(self, small_conv):
        ev = evaluate_layer(small_conv, SPEC)[0]
        result = simulate_assignment(make_assignment(0, ev, SPEC), SPEC)
        assert result.compute_busy_cycles == pytest.approx(
            small_conv.macs / SPEC.macs_per_cycle
        )


class TestPlanSimulation:
    @pytest.mark.parametrize("objective", [Objective.ACCESSES, Objective.LATENCY])
    def test_crosscheck_small_model(self, objective):
        plan = plan_heterogeneous(
            get_model("MobileNet"), AcceleratorSpec(glb_bytes=kib(64)), objective
        )
        check, sim = crosscheck_plan(plan)
        assert check.traffic_matches
        assert check.latency_rel_error < 1e-5
        assert len(sim.layers) == len(plan.model)

    def test_crosscheck_with_interlayer(self):
        plan = plan_heterogeneous(
            get_model("MobileNet"),
            AcceleratorSpec(glb_bytes=kib(512)),
            interlayer=True,
        )
        check, _ = crosscheck_plan(plan)
        assert check.traffic_matches
        assert check.latency_rel_error < 1e-5

    def test_plan_totals_sum_layers(self):
        plan = plan_heterogeneous(
            get_model("MobileNet"), AcceleratorSpec(glb_bytes=kib(64))
        )
        result = simulate_plan(plan)
        assert result.total_cycles == pytest.approx(
            sum(l.cycles for l in result.layers)
        )
        assert result.dram_total_elems == (
            result.dram_load_elems + result.dram_store_elems
        )
