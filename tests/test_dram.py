"""Banked DRAM model: spec, mappings, backend, trace and end-to-end wiring."""

from __future__ import annotations

import pytest

from repro.arch import AcceleratorSpec, kib
from repro.dram import (
    DEFAULT_DDR4_SPEC,
    KNOWN_MAPPINGS,
    MAPPING_NAMES,
    MAPPING_POLICIES,
    DramAccess,
    DramSpec,
    DramStats,
    Region,
    combine_stats,
    dram_effective_bandwidth,
    get_mapping,
    layer_regions,
    partition_banks,
    schedule_accesses,
    simulate_accesses,
    simulate_plan_dram,
    simulate_schedule,
)
from repro.estimators import schedule_latency
from repro.manager import MemoryManager
from repro.nn.zoo import get_model
from repro.policies import NAMED_POLICIES

SPEC = AcceleratorSpec(glb_bytes=kib(256))


@pytest.fixture(scope="module")
def layer():
    return get_model("ResNet18").layers[0]


@pytest.fixture(scope="module")
def schedule(layer):
    for policy in NAMED_POLICIES:
        candidate = policy.plan(layer, SPEC.glb_elems, True)
        if candidate is not None:
            return candidate.schedule
    raise AssertionError("no policy fits the reference layer")


# ----------------------------------------------------------------------
# DramSpec
# ----------------------------------------------------------------------


class TestDramSpec:
    def test_default_peak_matches_paper_flat_bandwidth(self):
        # 2 channels x 8 B/cycle = the paper's 16 elems/cycle at 8-bit.
        assert DEFAULT_DDR4_SPEC.peak_bytes_per_cycle == 16.0
        assert DEFAULT_DDR4_SPEC.mapping in KNOWN_MAPPINGS

    def test_derived_geometry(self):
        spec = DramSpec()
        assert spec.total_banks == spec.channels * spec.banks_per_channel
        assert spec.bank_bytes == spec.rows_per_bank * spec.row_bytes
        assert spec.capacity_bytes == spec.total_banks * spec.bank_bytes
        assert spec.row_miss_penalty == spec.t_rp + spec.t_rcd + spec.t_cas
        assert spec.row_open_penalty == spec.t_rcd + spec.t_cas
        # Per-channel bus occupancy, not the aggregate peak.
        assert spec.transfer_cycles(160) == 160 / spec.channel_bytes_per_cycle

    def test_validation_reports_every_invalid_field(self):
        with pytest.raises(ValueError) as excinfo:
            DramSpec(channels=0, t_rcd=-1, row_bytes=100, mapping="bogus")
        message = str(excinfo.value)
        assert message.startswith("invalid DramSpec: ")
        for field in ("channels", "t_rcd", "row_bytes", "mapping"):
            assert field in message
        assert message.count(";") >= 3

    def test_row_bytes_must_hold_whole_bursts(self):
        with pytest.raises(ValueError):
            DramSpec(row_bytes=96, burst_bytes=64)


# ----------------------------------------------------------------------
# Mapping policies
# ----------------------------------------------------------------------


def _regions(spec, sizes, traffics=None):
    traffics = traffics or [0] * len(sizes)
    regions, base = [], 0
    for i, (size, traffic) in enumerate(zip(sizes, traffics)):
        regions.append(
            Region(name=f"r{i}", index=i, base=base, size=size, traffic=traffic)
        )
        base += -(-size // spec.row_bytes) * spec.row_bytes
    return tuple(regions)


class TestMappings:
    def test_registry(self):
        assert set(MAPPING_NAMES) == set(KNOWN_MAPPINGS) == set(MAPPING_POLICIES)
        for name in MAPPING_NAMES:
            assert get_mapping(name).name == name
        with pytest.raises(KeyError, match="available"):
            get_mapping("nope")

    @pytest.mark.parametrize("name", MAPPING_NAMES)
    def test_locate_stays_in_range_and_is_deterministic(self, name):
        spec = DramSpec()
        regions = _regions(spec, [5 * spec.row_bytes, 300, 7000], [10, 20, 30])
        layout = get_mapping(name).layout(spec, regions)
        for region in regions:
            for offset in range(0, region.size, spec.row_bytes // 2):
                channel, bank, row = layout.locate(region.index, offset)
                assert 0 <= channel < spec.channels
                assert 0 <= bank < spec.banks_per_channel
                assert 0 <= row < spec.rows_per_bank
                assert layout.locate(region.index, offset) == (channel, bank, row)

    def test_row_major_packs_small_tensors_into_one_bank(self):
        spec = DramSpec()
        regions = _regions(spec, [4 * spec.row_bytes, 4 * spec.row_bytes])
        layout = get_mapping("row_major").layout(spec, regions)
        coords = {
            layout.locate(r.index, off)[:2]
            for r in regions
            for off in range(0, r.size, spec.row_bytes)
        }
        assert coords == {(0, 0)}  # one bank of one channel: the conflict case

    def test_bank_interleaved_rotates_channels_then_banks(self):
        spec = DramSpec()
        regions = _regions(spec, [4 * spec.row_bytes])
        layout = get_mapping("bank_interleaved").layout(spec, regions)
        located = [
            layout.locate(0, block * spec.row_bytes) for block in range(4)
        ]
        assert located == [(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)]

    def test_reuse_aware_gives_operands_disjoint_banks(self):
        spec = DramSpec()
        regions = _regions(
            spec,
            [8 * spec.row_bytes, 8 * spec.row_bytes, 8 * spec.row_bytes],
            [600, 300, 100],
        )
        layout = get_mapping("reuse_aware").layout(spec, regions)
        banks_per_region = [
            {
                layout.locate(r.index, off)[1]
                for off in range(0, r.size, spec.row_bytes)
            }
            for r in regions
        ]
        for i in range(len(regions)):
            for j in range(i + 1, len(regions)):
                assert not (banks_per_region[i] & banks_per_region[j])

    def test_partition_banks(self):
        assert partition_banks(8, (1, 1)) == ((0, 4), (4, 4))
        shares = partition_banks(8, (600, 300, 100))
        assert sum(count for _, count in shares) == 8
        assert all(count >= 1 for _, count in shares)
        assert shares[0][1] >= shares[1][1] >= shares[2][1]
        # More regions than banks: wrap round-robin, one bank each.
        assert partition_banks(2, (1, 1, 1)) == ((0, 1), (1, 1), (0, 1))
        with pytest.raises(ValueError):
            partition_banks(8, ())


# ----------------------------------------------------------------------
# Trace-driven backend
# ----------------------------------------------------------------------


class TestBackend:
    def test_sequential_row_costs_one_activation(self):
        spec = DramSpec(channels=1, banks_per_channel=1)
        regions = _regions(spec, [spec.row_bytes])
        stats = simulate_accesses(
            [DramAccess(region=0, offset=0, nbytes=spec.row_bytes)],
            regions,
            spec,
            get_mapping("row_major"),
        )
        assert stats.row_misses == stats.activations == 1
        assert stats.bursts == spec.row_bytes // spec.burst_bytes
        assert stats.row_hits == stats.bursts - 1
        # Cold bank: no precharge, just activate + CAS, then stream.
        assert stats.cycles == pytest.approx(
            spec.row_open_penalty + spec.row_bytes / spec.channel_bytes_per_cycle
        )

    def test_row_conflicts_pay_the_miss_penalty(self):
        spec = DramSpec(channels=1, banks_per_channel=1)
        regions = _regions(spec, [spec.row_bytes, spec.row_bytes])
        ping_pong = [
            DramAccess(region=i % 2, offset=0, nbytes=spec.row_bytes)
            for i in range(6)
        ]
        stats = simulate_accesses(
            ping_pong, regions, spec, get_mapping("row_major")
        )
        # Same bank, alternating rows: every access is a conflict.
        assert stats.row_misses == 6
        assert stats.cycles == pytest.approx(
            spec.row_open_penalty
            + 5 * spec.row_miss_penalty
            + 6 * spec.row_bytes / spec.channel_bytes_per_cycle
        )

    def test_bank_parallelism_hides_activations(self):
        spec = DramSpec(channels=1, banks_per_channel=8)
        regions = _regions(spec, [8 * spec.row_bytes])
        stream = [DramAccess(region=0, offset=0, nbytes=8 * spec.row_bytes)]
        interleaved = simulate_accesses(
            stream, regions, spec, get_mapping("bank_interleaved")
        )
        serial = simulate_accesses(
            stream, regions, spec, get_mapping("row_major")
        )
        assert interleaved.total_bytes == serial.total_bytes
        # Same bus, same bytes: spreading rows over banks overlaps the
        # activations that row_major serializes in its single bank.
        assert interleaved.cycles < serial.cycles

    def test_stats_invariants_and_merge(self):
        spec = DramSpec()
        regions = _regions(spec, [3 * spec.row_bytes], [3 * spec.row_bytes])
        stats = simulate_accesses(
            [
                DramAccess(region=0, offset=0, nbytes=2 * spec.row_bytes),
                DramAccess(region=0, offset=0, nbytes=512, write=True),
            ],
            regions,
            spec,
            get_mapping("bank_interleaved"),
        )
        assert stats.bursts == stats.row_hits + stats.row_misses
        assert stats.cycles >= stats.ideal_cycles
        assert stats.effective_bytes_per_cycle <= spec.peak_bytes_per_cycle
        assert stats.stall_cycles == pytest.approx(stats.cycles - stats.ideal_cycles)
        assert stats.energy_pj == pytest.approx(
            stats.act_energy_pj + stats.read_energy_pj + stats.write_energy_pj
        )
        assert stats.writes_bytes == 512
        merged = combine_stats([stats, stats])
        assert merged.total_bytes == 2 * stats.total_bytes
        assert merged.cycles == pytest.approx(2 * stats.cycles)
        assert combine_stats([]) == DramStats()

    def test_access_and_region_validation(self):
        with pytest.raises(ValueError):
            DramAccess(region=0, offset=0, nbytes=0)
        with pytest.raises(ValueError):
            Region(name="x", index=0, base=0, size=0)


# ----------------------------------------------------------------------
# Schedule lowering
# ----------------------------------------------------------------------


class TestTrace:
    def test_regions_are_row_aligned_and_traffic_weighted(self, schedule, layer):
        regions = layer_regions(schedule, layer, 1, DEFAULT_DDR4_SPEC)
        assert [r.name for r in regions] == ["ifmap", "filters", "ofmap"]
        for region in regions:
            assert region.base % DEFAULT_DDR4_SPEC.row_bytes == 0
        assert regions[0].traffic == schedule.total_ifmap_load
        assert regions[1].traffic == schedule.total_filter_load
        assert regions[2].traffic == schedule.total_store

    def test_access_stream_conserves_schedule_traffic(self, schedule, layer):
        regions = layer_regions(schedule, layer, 1, DEFAULT_DDR4_SPEC)
        accesses = schedule_accesses(schedule, regions, 1)
        reads = sum(a.nbytes for a in accesses if not a.write)
        writes = sum(a.nbytes for a in accesses if a.write)
        assert reads == schedule.total_load
        assert writes == schedule.total_store
        for access in accesses:
            region = regions[access.region]
            assert 0 <= access.offset < region.size
            assert access.offset + access.nbytes <= region.size

    @pytest.mark.parametrize("mapping", MAPPING_NAMES)
    def test_simulation_matches_schedule_bytes(self, schedule, layer, mapping):
        stats = simulate_schedule(schedule, layer, 1, DEFAULT_DDR4_SPEC, mapping)
        assert stats.reads_bytes == schedule.total_load
        assert stats.writes_bytes == schedule.total_store
        assert stats.cycles >= stats.ideal_cycles

    def test_effective_bandwidth_below_flat_peak(self, schedule, layer):
        bw = dram_effective_bandwidth(schedule, layer, DEFAULT_DDR4_SPEC, 1, 16.0)
        assert 0.0 < bw <= 16.0


# ----------------------------------------------------------------------
# End-to-end wiring
# ----------------------------------------------------------------------


class TestWiring:
    @pytest.fixture(scope="class")
    def plans(self):
        model = get_model("ResNet18")
        flat = MemoryManager(SPEC).plan(model)
        banked = MemoryManager(SPEC.with_dram(DEFAULT_DDR4_SPEC)).plan(model)
        return flat, banked

    def test_no_dram_spec_is_bit_identical(self, schedule, layer):
        with_layer = schedule_latency(schedule, SPEC, True, layer=layer)
        without = schedule_latency(schedule, SPEC, True)
        assert with_layer == without

    def test_dram_latency_never_beats_flat(self, schedule, layer):
        banked = SPEC.with_dram(DEFAULT_DDR4_SPEC)
        flat = schedule_latency(schedule, SPEC, True, layer=layer)
        aware = schedule_latency(schedule, banked, True, layer=layer)
        assert aware.total_cycles >= flat.total_cycles - 1e-9

    def test_plan_level_latency_ordering(self, plans):
        flat, banked = plans
        assert banked.total_latency_cycles >= flat.total_latency_cycles - 1e-9
        # Same traffic either way: DRAM changes timing, not byte counts.
        assert banked.total_accesses_bytes == flat.total_accesses_bytes

    def test_engine_agrees_with_estimator_under_dram(self, plans):
        from repro.sim.engine import simulate_plan

        _, banked = plans
        sim = simulate_plan(banked)
        assert sim.total_cycles == pytest.approx(banked.total_latency_cycles)

    def test_energy_split_only_with_dram(self, plans):
        from repro.energy import plan_energy

        flat, banked = plans
        flat_energy = plan_energy(flat)
        assert (flat_energy.dram_act_pj, flat_energy.dram_read_pj) == (0.0, 0.0)
        banked_energy = plan_energy(banked)
        assert banked_energy.dram_pj == pytest.approx(
            banked_energy.dram_act_pj
            + banked_energy.dram_read_pj
            + banked_energy.dram_write_pj
        )
        assert banked_energy.dram_act_pj > 0

    def test_manager_simulate_dram_sweeps_mappings(self, plans):
        flat, _ = plans
        manager = MemoryManager(SPEC.with_dram(DEFAULT_DDR4_SPEC))
        results = {
            name: manager.simulate_dram(flat, mapping=name)
            for name in MAPPING_NAMES
        }
        assert results["bank_interleaved"].transfer_cycles < (
            results["row_major"].transfer_cycles
        )
        for result in results.values():
            assert 0.0 < result.row_hit_rate <= 1.0
            assert result.total.cycles >= result.total.ideal_cycles

    def test_plan_without_dram_needs_explicit_spec(self, plans):
        flat, _ = plans
        with pytest.raises(ValueError, match="DramSpec"):
            simulate_plan_dram(flat)

    def test_dram_backed_plans_verify(self, plans):
        from repro.verify import verify_plan

        _, banked = plans
        assert verify_plan(banked).ok


class TestSweepExperiment:
    def test_bank_interleaved_beats_row_major_across_the_zoo(self):
        from repro.experiments import dram_sweep

        cells = dram_sweep.run(glb_kb=64)
        cycles = {}
        for cell in cells:
            cycles.setdefault(cell.model, {})[cell.mapping] = cell.stats.cycles
        assert len(cycles) == 6
        wins = sum(
            1
            for per_mapping in cycles.values()
            if per_mapping["bank_interleaved"] < per_mapping["row_major"]
        )
        assert wins >= 4  # the ISSUE acceptance bar; in practice 6/6
        table = dram_sweep.to_table(cells).render()
        assert "row_major" in table and "bank_interleaved" in table
        best = dram_sweep.best_mapping_per_model(cells)
        assert set(best) == set(cycles)

    def test_cli_dram_subcommand(self, capsys):
        from repro.cli import main

        assert main(["dram", "ResNet18", "--glb", "64"]) == 0
        out = capsys.readouterr().out
        for name in MAPPING_NAMES:
            assert name in out
        with pytest.raises(SystemExit, match="unknown mapping"):
            main(["dram", "ResNet18", "--mappings", "bogus"])
