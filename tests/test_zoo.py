"""Model zoo: the six paper networks must match Table 2 and known shapes."""

import pytest

from repro.nn import LayerKind
from repro.nn.stats import characteristics
from repro.nn.zoo import (
    PAPER_LAYER_COUNTS,
    PAPER_MODEL_NAMES,
    get_model,
    paper_models,
)


class TestTable2Counts:
    @pytest.mark.parametrize("name", PAPER_MODEL_NAMES)
    def test_layer_count_matches_table2(self, name):
        assert len(get_model(name)) == PAPER_LAYER_COUNTS[name]

    def test_registry_order(self):
        assert PAPER_MODEL_NAMES == (
            "EfficientNetB0",
            "GoogLeNet",
            "MnasNet",
            "MobileNet",
            "MobileNetV2",
            "ResNet18",
        )

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_model("NotANetwork")

    def test_models_are_cached(self):
        assert get_model("ResNet18") is get_model("ResNet18")

    def test_paper_models_returns_all(self):
        assert [m.name for m in paper_models()] == list(PAPER_MODEL_NAMES)


class TestLayerTypes:
    def test_resnet18_types(self):
        kinds = set(get_model("ResNet18").kind_histogram())
        assert kinds == {LayerKind.CONV, LayerKind.PROJECTION, LayerKind.FC}

    def test_mobilenet_types(self):
        hist = get_model("MobileNet").kind_histogram()
        assert hist[LayerKind.DEPTHWISE] == 13
        assert hist[LayerKind.POINTWISE] == 13
        assert hist[LayerKind.CONV] == 1
        assert hist[LayerKind.FC] == 1

    def test_googlenet_has_no_depthwise(self):
        assert LayerKind.DEPTHWISE not in get_model("GoogLeNet").kind_histogram()

    def test_efficientnet_depthwise_count(self):
        # 16 MBConv blocks, one DW each.
        assert get_model("EfficientNetB0").kind_histogram()[LayerKind.DEPTHWISE] == 16


class TestKnownShapes:
    def test_resnet18_stem(self):
        conv1 = get_model("ResNet18").find("conv1")
        assert (conv1.in_h, conv1.in_c, conv1.f_h, conv1.stride, conv1.padding) == (
            224,
            3,
            7,
            2,
            3,
        )
        assert (conv1.out_h, conv1.out_c) == (112, 64)

    def test_resnet18_conv2_input(self):
        # After the 3x3/2 maxpool: 56x56x64 (the Table 3 P2 worst case).
        layer = get_model("ResNet18").find("conv2_1a")
        assert (layer.in_h, layer.in_w, layer.in_c) == (56, 56, 64)

    def test_resnet18_last_conv(self):
        layer = get_model("ResNet18").find("conv5_2b")
        assert (layer.in_h, layer.in_c, layer.num_filters) == (7, 512, 512)

    def test_resnet18_classifier(self):
        fc = get_model("ResNet18").find("fc")
        assert (fc.in_c, fc.num_filters) == (512, 1000)

    def test_mobilenet_head(self):
        fc = get_model("MobileNet").find("fc")
        assert fc.in_c == 1024

    def test_mobilenetv2_head(self):
        head = get_model("MobileNetV2").find("head")
        assert (head.in_h, head.in_c, head.num_filters) == (7, 320, 1280)

    def test_mnasnet_final_channels(self):
        head = get_model("MnasNet").find("head")
        assert (head.in_c, head.num_filters) == (320, 1280)

    def test_googlenet_inception_3a_output(self):
        # 64 + 128 + 32 + 32 = 256 channels; the next module consumes them.
        layer = get_model("GoogLeNet").find("inc3b_1x1")
        assert layer.in_c == 256

    def test_googlenet_aux_head(self):
        aux = get_model("GoogLeNet").find("aux4a_fc1")
        assert (aux.in_c, aux.num_filters) == (2048, 1024)

    def test_efficientnet_stem_and_head(self):
        model = get_model("EfficientNetB0")
        assert model.find("stem").num_filters == 32
        assert model.find("head").num_filters == 1280
        assert model.find("fc").in_c == 1280

    def test_efficientnet_se_shapes(self):
        model = get_model("EfficientNetB0")
        se_r = model.find("b2_se_reduce")
        se_e = model.find("b2_se_expand")
        assert se_r.in_h == 1 and se_r.in_w == 1
        # SE expands back to the block's expanded width (16*6=96).
        assert se_e.num_filters == 96

    def test_all_macs_positive(self):
        for model in paper_models():
            assert model.total_macs > 0
            assert all(layer.macs > 0 for layer in model.layers)


class TestMacTotals:
    """Published MAC counts (±10% for architecture-variant slack)."""

    @pytest.mark.parametrize(
        "name,expected_macs",
        [
            ("ResNet18", 1.81e9),
            ("MobileNet", 0.57e9),
            ("MobileNetV2", 0.30e9),
            ("EfficientNetB0", 0.39e9),
            ("GoogLeNet", 1.58e9),
            ("MnasNet", 0.31e9),
        ],
    )
    def test_total_macs(self, name, expected_macs):
        macs = get_model(name).total_macs
        assert macs == pytest.approx(expected_macs, rel=0.10)


class TestCharacteristics:
    def test_summary(self):
        info = characteristics(get_model("ResNet18"))
        assert info.num_layers == 21
        assert LayerKind.CONV in info.layer_kinds
        assert info.total_weight_elems == pytest.approx(11.68e6, rel=0.02)


class TestSummary:
    def test_summarize_contains_layers_and_totals(self):
        from repro.nn import summarize

        text = summarize(get_model("ResNet18"))
        assert "ResNet18: 21 layers" in text
        assert "conv1" in text and "fc" in text
        assert "peak single-layer working set" in text

    def test_summarize_respects_data_width(self):
        from repro.arch import AcceleratorSpec
        from repro.nn import summarize

        text = summarize(get_model("MobileNet"), AcceleratorSpec(data_width_bits=16))
        assert "at 16-bit" in text
