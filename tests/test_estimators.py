"""Per-layer evaluation: Algorithm 1 lines 7–9."""

import pytest

from repro.arch import AcceleratorSpec, kib
from repro.estimators import (
    estimate_accesses,
    estimate_latency,
    estimate_memory,
    evaluate_layer,
)
from repro.policies import NAMED_POLICIES, policy_by_name


class TestEvaluateLayer:
    def test_all_results_fit_the_glb(self, conv_layer, spec64):
        for ev in evaluate_layer(conv_layer, spec64):
            assert ev.memory_bytes <= spec64.glb_bytes

    def test_infeasible_policies_absent(self, conv_layer, spec64):
        # P2 needs ~200 kB for this layer; it cannot appear at 64 kB.
        labels = {ev.policy_name for ev in evaluate_layer(conv_layer, spec64)}
        assert "p2" not in labels
        assert "intra" not in labels

    def test_feasible_policies_present_at_1mb(self, conv_layer, spec1m):
        labels = {ev.policy_name for ev in evaluate_layer(conv_layer, spec1m)}
        assert {"intra", "p1", "p2", "p3"} <= labels

    def test_prefetch_flag_disables_pf_variants(self, conv_layer, spec1m):
        evs = evaluate_layer(conv_layer, spec1m, allow_prefetch=False)
        assert all(not ev.prefetch for ev in evs)

    def test_fallback_only_when_empty_by_default(self, conv_layer, spec64):
        labels = {ev.policy_name for ev in evaluate_layer(conv_layer, spec64)}
        assert "tiled" not in labels  # named policies fit at 64 kB

    def test_always_fallback_adds_tiled(self, conv_layer, spec64):
        labels = {
            ev.policy_name
            for ev in evaluate_layer(conv_layer, spec64, always_fallback=True)
        }
        assert "tiled" in labels

    def test_fallback_rescues_tiny_glb(self, conv_layer):
        spec = AcceleratorSpec(glb_bytes=3000)
        evs = evaluate_layer(conv_layer, spec)
        assert evs, "tile search should rescue a tiny GLB"
        assert all(ev.policy_name == "tiled" for ev in evs)

    def test_bytes_scale_with_data_width(self, conv_layer):
        # Only the fixed policies: P4/P5 legitimately pick different block
        # sizes when the element budget shrinks, changing element traffic.
        narrow = AcceleratorSpec(glb_bytes=kib(2048), data_width_bits=8)
        wide = AcceleratorSpec(glb_bytes=kib(2048), data_width_bits=32)
        fixed = {"intra", "p1", "p2", "p3"}
        ev8 = {
            e.label: e
            for e in evaluate_layer(conv_layer, narrow)
            if e.policy_name in fixed
        }
        ev32 = {
            e.label: e
            for e in evaluate_layer(conv_layer, wide)
            if e.policy_name in fixed
        }
        common = set(ev8) & set(ev32)
        assert common
        for label in common:
            assert ev32[label].accesses_bytes == 4 * ev8[label].accesses_bytes
            assert ev32[label].memory_bytes == 4 * ev8[label].memory_bytes


class TestEstimateFunctions:
    def test_memory_bytes(self, conv_layer, spec1m):
        plan = policy_by_name("p1").plan(conv_layer, spec1m.glb_elems, False)
        assert estimate_memory(plan, spec1m) == plan.tiles.total

    def test_accesses_bytes(self, conv_layer, spec1m):
        plan = policy_by_name("p1").plan(conv_layer, spec1m.glb_elems, False)
        assert estimate_accesses(plan, spec1m) == plan.traffic.total

    def test_latency_positive(self, conv_layer, spec1m):
        plan = policy_by_name("p1").plan(conv_layer, spec1m.glb_elems, False)
        latency = estimate_latency(plan, spec1m)
        assert latency.total_cycles > 0
        assert latency.compute_cycles == pytest.approx(
            conv_layer.macs / spec1m.macs_per_cycle
        )

    def test_reads_writes_partition_accesses(self, conv_layer, spec1m):
        for ev in evaluate_layer(conv_layer, spec1m):
            assert ev.read_bytes + ev.write_bytes == ev.accesses_bytes


class TestSingleTransferEquivalence:
    """intra/p1/p2/p3 all transfer each element once for dense layers."""

    def test_equal_accesses(self, conv_layer, spec1m):
        totals = set()
        for name in ("intra", "p1", "p2", "p3"):
            plan = policy_by_name(name).plan(conv_layer, spec1m.glb_elems, False)
            totals.add(plan.traffic.total)
        assert len(totals) == 1

    def test_p4_p5_never_fewer_accesses(self, conv_layer, spec1m):
        reference = policy_by_name("p1").plan(conv_layer, spec1m.glb_elems, False)
        for name in ("p4", "p5"):
            plan = policy_by_name(name).plan(conv_layer, spec1m.glb_elems, False)
            assert plan.traffic.total >= reference.traffic.total
