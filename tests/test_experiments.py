"""Experiment generators: every table/figure regenerates with the paper's shape.

These are integration-level checks that assert the *qualitative* results
the paper reports; EXPERIMENTS.md records the quantitative comparison.
The heavier sweeps (Figs. 5, 7, 8) restrict to a subset of models/sizes to
keep the suite fast — the benchmark harness runs them in full.
"""

import pytest

from repro.experiments import (
    fig1,
    fig3,
    fig5,
    fig6,
    fig7,
    fig9,
    fig10,
    fig11,
    table2,
    table3,
    table4,
)
from repro.experiments.runner import ARTIFACTS, run_all


class TestTable2:
    def test_layer_counts_match_paper(self):
        for row in table2.run():
            assert row.num_layers == row.paper_num_layers

    def test_types_match_paper_except_resnet_pw(self):
        # Our ResNet18 classifies its 1x1 shortcut convs as PL only; the
        # paper additionally lists PW (recorded deviation).
        for row in table2.run():
            if row.network == "ResNet18":
                continue
            assert row.layer_types == row.paper_layer_types

    def test_render(self):
        assert "Table 2" in table2.to_table(table2.run()).render()


class TestTable3:
    def test_values_within_2pct_of_paper(self):
        for row in table3.run():
            assert row.paper_kib is not None
            assert row.max_kib == pytest.approx(row.paper_kib, rel=0.02), (
                row.network,
                row.policy,
            )

    def test_exact_signature_values(self):
        """The hand-verified signatures from the paper's table."""
        rows = {(r.network, r.policy): r for r in table3.run()}
        assert rows[("ResNet18", "intra")].max_kib == pytest.approx(2353.0, abs=0.1)
        assert rows[("ResNet18", "p2")].max_kib == pytest.approx(199.6, abs=0.1)
        assert rows[("ResNet18", "p3")].max_kib == pytest.approx(788.6, abs=0.1)
        assert rows[("GoogLeNet", "p2")].max_kib == pytest.approx(199.6, abs=0.1)

    def test_intra_is_upper_bound(self):
        rows = list(table3.run())
        by_net = {}
        for r in rows:
            by_net.setdefault(r.network, {})[r.policy] = r.max_kib
        for net, vals in by_net.items():
            for policy in ("p1", "p2", "p3"):
                assert vals[policy] <= vals["intra"] + 0.1, (net, policy)


class TestTable4:
    def test_every_network_has_policies(self):
        for row in table4.run():
            assert row.policies

    def test_notation(self):
        from repro.experiments.table4 import _paper_notation

        assert _paper_notation({"p1"}) == "policy 1"
        assert _paper_notation({"p1+p"}) == "policy 1 +p"
        assert _paper_notation({"p1", "p1+p"}) == "policy 1 (+p)"
        assert _paper_notation({"intra", "p2+p"}) == "intra-layer reuse, policy 2 +p"

    def test_core_policies_overlap_paper(self):
        """p1/p2/p3 appear at 64 kB for every network, as in the paper."""
        for row in table4.run():
            for expected in ("policy 1", "policy 2", "policy 3"):
                assert expected in row.policies, row


class TestFig3:
    def test_resnet18_has_21_rows(self):
        assert len(fig3.run()) == 21

    def test_early_layers_fmap_dominated_late_filter_dominated(self):
        rows = fig3.run()
        first = rows[1]  # conv2_1a
        last_conv = rows[-2]  # conv5_2b
        assert first.ifmap_kib + first.ofmap_kib > first.filter_kib
        assert last_conv.filter_kib > last_conv.ifmap_kib + last_conv.ofmap_kib

    def test_breakdown_positive(self):
        for row in fig3.run():
            assert row.total_kib > 0


class TestFig5:
    @pytest.fixture(scope="class")
    def cells(self):
        return fig5.run(models=("ResNet18", "MobileNetV2"), glb_sizes_kb=(64, 1024))

    def test_het_beats_baselines_at_64k(self, cells):
        for cell in cells:
            if cell.glb_kb == 64:
                assert cell.reduction_vs_best_baseline("het") > 30.0

    def test_het_reduction_band_at_64k(self, cells):
        """Paper band at 64 kB: 43.2% (MobileNetV2) .. 79.8% (ResNet18)."""
        by_model = {c.model: c for c in cells if c.glb_kb == 64}
        assert 35.0 <= by_model["MobileNetV2"].reduction_vs_best_baseline("het") <= 60.0
        assert 70.0 <= by_model["ResNet18"].reduction_vs_best_baseline("het") <= 90.0

    def test_hom_not_better_than_het(self, cells):
        for cell in cells:
            assert cell.accesses_mib["het"] <= cell.accesses_mib["hom"] + 1e-9

    def test_baselines_shrink_with_buffer(self):
        cells = fig5.run(models=("ResNet18",), glb_sizes_kb=(64, 1024))
        small, large = cells
        for scheme in ("sa_25_75", "sa_50_50", "sa_75_25"):
            assert large.accesses_mib[scheme] < small.accesses_mib[scheme]


class TestFig6:
    def test_policies_annotated(self):
        rows = fig6.run()
        assert len(rows) == 21
        assert all(r.label for r in rows)

    def test_allocations_fit_glb(self):
        for r in fig6.run(glb_kb=64):
            assert r.total_kib <= 64.0 + 1e-9

    def test_static_partition_violated_somewhere(self):
        """Fig. 6's point: some layer needs >50% for one data type."""
        rows = fig6.run(glb_kb=64)
        assert any(
            any(r.exceeds_static_half(64).values()) for r in rows
        )


class TestFig7:
    @pytest.fixture(scope="class")
    def cells(self):
        return fig7.run(data_widths=(8, 32), glb_sizes_kb=(64, 1024))

    def test_het_never_worse(self, cells):
        for c in cells:
            assert c.het_benefit_pct >= -1e-9

    def test_benefit_grows_with_width_at_64k(self, cells):
        by = {(c.data_width_bits, c.glb_kb): c for c in cells}
        assert (
            by[(32, 64)].het_benefit_pct >= by[(8, 64)].het_benefit_pct
        )

    def test_benefit_fades_with_buffer(self, cells):
        by = {(c.data_width_bits, c.glb_kb): c for c in cells}
        assert by[(32, 1024)].het_benefit_pct <= by[(32, 64)].het_benefit_pct


class TestFig9:
    def test_latency_objective_trades_accesses_for_latency(self):
        rows = fig9.run(models=("MobileNet", "ResNet18"))
        for r in rows:
            assert r.latency_benefit_pct >= 0.0
            assert r.accesses_benefit_pct <= 0.0


class TestFig10:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig10.run(glb_sizes_kb=(64, 1024))

    def test_prefetch_helps_latency(self, rows):
        for r in rows:
            assert r.latency_benefit_pct > 0.0

    def test_access_penalty_at_small_buffer(self, rows):
        assert rows[0].accesses_benefit_pct <= 0.0

    def test_high_coverage(self, rows):
        for r in rows:
            assert r.prefetch_coverage >= 0.9


class TestFig11:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig11.run(glb_sizes_kb=(64, 512, 1024))

    def test_benefits_grow_with_buffer(self, rows):
        benefits = [r.accesses_benefit_pct for r in rows]
        assert benefits == sorted(benefits)

    def test_1mb_access_benefit_near_paper(self, rows):
        # Paper: 70% at 1 MB for MnasNet.
        assert rows[-1].accesses_benefit_pct == pytest.approx(70.0, abs=10.0)

    def test_coverage_monotone(self, rows):
        coverages = [r.coverage for r in rows]
        assert coverages == sorted(coverages)
        assert coverages[-1] >= 0.9

    def test_never_hurts(self, rows):
        for r in rows:
            assert r.accesses_benefit_pct >= -1e-9


class TestFig1:
    def test_cases(self):
        cases = {c.case: c for c in fig1.run()}
        a, b = cases["A"], cases["B"]
        # Case A is filter-dominated, case B feature-map-dominated.
        assert a.need_kib["filter"] > a.need_kib["ifmap"] + a.need_kib["ofmap"]
        assert b.need_kib["ifmap"] + b.need_kib["ofmap"] > b.need_kib["filter"]
        # Separate buffers cannot hold the dominant type; the GLB manager can.
        assert a.separate_fit["filter"] < 0.05
        assert a.glb_feasible and b.glb_feasible


class TestRunner:
    def test_artifact_registry_complete(self):
        paper_artifacts = {
            "table2",
            "table3",
            "table4",
            "fig1",
            "fig3",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
        }
        assert paper_artifacts <= set(ARTIFACTS)
        extensions = set(ARTIFACTS) - paper_artifacts
        assert extensions == {
            "energy",
            "ablation-interlayer",
            "ablation-fallback",
            "ablation-dataflow",
            "resolution",
            "bounds",
            "dram-sweep",
        }

    def test_run_subset_and_csv(self, tmp_path):
        tables = run_all(csv_dir=str(tmp_path), only=["table2", "fig3"])
        assert len(tables) == 2
        assert (tmp_path / "table2.csv").exists()
        assert (tmp_path / "fig3.csv").exists()

    def test_unknown_artifact(self):
        with pytest.raises(KeyError):
            run_all(only=["fig99"])


class TestFigureCharts:
    def test_fig5_chart(self):
        cells = fig5.run(models=("ResNet18",), glb_sizes_kb=(64,))
        text = fig5.to_chart(cells, 64).render()
        assert "Figure 5" in text and "ResNet18" in text and "het" in text

    def test_fig8_chart(self):
        from repro.experiments import fig8

        cells = fig8.run(models=("MobileNet",), glb_sizes_kb=(64,))
        text = fig8.to_chart(cells, 64).render()
        assert "Figure 8" in text and "Het_l" in text
