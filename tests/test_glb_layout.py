"""Address-level GLB layout of execution plans."""

import pytest

from repro.analyzer import Objective, plan_heterogeneous
from repro.arch import AcceleratorSpec, kib
from repro.nn.zoo import get_model, paper_models
from repro.sim.glb import AllocationError, Region, Side, layout_assignment, layout_plan


class TestRegion:
    def test_end_and_overlap(self):
        a = Region("a", 0, 10)
        b = Region("b", 10, 5)
        c = Region("c", 9, 2)
        assert a.end == 10
        assert not a.overlaps(b)
        assert a.overlaps(c) and c.overlaps(b)

    def test_zero_size_never_overlaps(self):
        assert not Region("z", 5, 0).overlaps(Region("a", 0, 10))

    def test_validation(self):
        with pytest.raises(ValueError):
            Region("bad", -1, 4)


class TestSide:
    def test_opposite(self):
        assert Side.TOP.opposite is Side.BOTTOM
        assert Side.BOTTOM.opposite is Side.TOP


class TestPlanLayouts:
    @pytest.mark.parametrize("glb_kb", [64, 256, 1024])
    @pytest.mark.parametrize("interlayer", [False, True])
    def test_all_paper_plans_lay_out(self, glb_kb, interlayer):
        """Every analyzer-accepted plan must be placeable — the ping-pong
        layout achieves exactly the aggregate feasibility bound."""
        spec = AcceleratorSpec(glb_bytes=kib(glb_kb))
        for model in paper_models():
            plan = plan_heterogeneous(model, spec, interlayer=interlayer)
            layouts = layout_plan(plan)
            assert len(layouts) == len(model)
            for layout in layouts:
                for region in layout.regions:
                    assert 0 <= region.offset and region.end <= spec.glb_bytes

    def test_regions_disjoint(self):
        spec = AcceleratorSpec(glb_bytes=kib(256))
        plan = plan_heterogeneous(get_model("MnasNet"), spec, interlayer=True)
        for layout in layout_plan(plan):
            regions = layout.regions
            for i, a in enumerate(regions):
                for b in regions[i + 1 :]:
                    assert not a.overlaps(b), (layout.layer_name, a, b)

    def test_double_buffered_tiles_have_two_slots(self):
        spec = AcceleratorSpec(glb_bytes=kib(256))
        plan = plan_heterogeneous(get_model("MobileNet"), spec)
        layouts = layout_plan(plan)
        prefetch_layers = [
            (a, l) for a, l in zip(plan.assignments, layouts) if a.prefetch
        ]
        assert prefetch_layers
        for assignment, layout in prefetch_layers:
            names = {r.name for r in layout.regions}
            streamed = [
                n for n in ("ifmap", "filters", "ofmap")
                if f"{n}[0]" in names
            ]
            assert streamed, layout
            for n in streamed:
                assert f"{n}[1]" in names

    def test_donation_addresses_thread_through(self):
        spec = AcceleratorSpec(glb_bytes=kib(1024))
        plan = plan_heterogeneous(get_model("MnasNet"), spec, interlayer=True)
        layouts = layout_plan(plan)
        for i, assignment in enumerate(plan.assignments[:-1]):
            if not assignment.donates:
                continue
            producer = layouts[i]
            consumer = layouts[i + 1]
            assert producer.donated_offset is not None
            incoming = consumer.region("ifmap(donated)")
            assert incoming.offset == producer.donated_offset
            assert incoming.size == producer.region("ofmap(donated)").size

    def test_donation_sides_alternate_along_chains(self):
        spec = AcceleratorSpec(glb_bytes=kib(1024))
        plan = plan_heterogeneous(get_model("MobileNet"), spec, interlayer=True)
        layouts = layout_plan(plan)
        previous_side = None
        for assignment, layout in zip(plan.assignments, layouts):
            if assignment.donates:
                if assignment.receives and previous_side is not None:
                    assert layout.donated_side is previous_side.opposite
                previous_side = layout.donated_side
            else:
                previous_side = None

    def test_used_bytes_never_exceed_glb(self):
        spec = AcceleratorSpec(glb_bytes=kib(64))
        plan = plan_heterogeneous(get_model("ResNet18"), spec, interlayer=True)
        for layout in layout_plan(plan):
            assert layout.used_bytes <= spec.glb_bytes


class TestAllocationErrors:
    def test_receive_without_incoming(self):
        spec = AcceleratorSpec(glb_bytes=kib(1024))
        plan = plan_heterogeneous(get_model("MnasNet"), spec, interlayer=True)
        receiver = next(a for a in plan.assignments if a.receives)
        with pytest.raises(AllocationError, match="no incoming region"):
            layout_assignment(receiver, spec.glb_bytes, 1, None, None)

    def test_overflow_detected(self):
        spec = AcceleratorSpec(glb_bytes=kib(64))
        plan = plan_heterogeneous(get_model("ResNet18"), spec)
        assignment = max(plan.assignments, key=lambda a: a.memory_bytes)
        with pytest.raises(AllocationError, match="overflows"):
            layout_assignment(assignment, assignment.memory_bytes // 2, 1)
