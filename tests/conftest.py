"""Shared fixtures: representative layers and accelerator specs."""

from __future__ import annotations

import os

import pytest

from repro.arch import AcceleratorSpec, kib
from repro.nn import LayerKind, LayerSpec


@pytest.fixture(autouse=True, scope="session")
def _session_cache_dir(tmp_path_factory: pytest.TempPathFactory):
    """Keep the whole test session away from the user's real plan cache.

    Individual tests that need a pristine cache point ``REPRO_CACHE_DIR``
    at their own tmp dir on top of this.
    """
    from repro.experiments import cache

    previous = os.environ.get(cache.ENV_CACHE_DIR)
    os.environ[cache.ENV_CACHE_DIR] = str(
        tmp_path_factory.mktemp("session-plan-cache")
    )
    yield
    if previous is None:
        os.environ.pop(cache.ENV_CACHE_DIR, None)
    else:
        os.environ[cache.ENV_CACHE_DIR] = previous


@pytest.fixture
def spec64() -> AcceleratorSpec:
    """The paper's accelerator at the smallest GLB (64 kB)."""
    return AcceleratorSpec(glb_bytes=kib(64))


@pytest.fixture
def spec1m() -> AcceleratorSpec:
    """The paper's accelerator at the largest GLB (1 MB)."""
    return AcceleratorSpec(glb_bytes=kib(1024))


@pytest.fixture
def conv_layer() -> LayerSpec:
    """A mid-size 3×3 convolution (ResNet18 conv2 shape)."""
    return LayerSpec(
        name="conv",
        kind=LayerKind.CONV,
        in_h=56,
        in_w=56,
        in_c=64,
        f_h=3,
        f_w=3,
        num_filters=64,
        stride=1,
        padding=1,
    )


@pytest.fixture
def dw_layer() -> LayerSpec:
    """A depth-wise 3×3 convolution (MobileNet dw2 shape)."""
    return LayerSpec(
        name="dw",
        kind=LayerKind.DEPTHWISE,
        in_h=112,
        in_w=112,
        in_c=64,
        f_h=3,
        f_w=3,
        num_filters=1,
        stride=2,
        padding=1,
    )


@pytest.fixture
def pw_layer() -> LayerSpec:
    """A 1×1 point-wise convolution."""
    return LayerSpec(
        name="pw",
        kind=LayerKind.POINTWISE,
        in_h=28,
        in_w=28,
        in_c=128,
        f_h=1,
        f_w=1,
        num_filters=256,
    )


@pytest.fixture
def fc_layer() -> LayerSpec:
    """A classifier FC layer."""
    return LayerSpec(
        name="fc",
        kind=LayerKind.FC,
        in_h=1,
        in_w=1,
        in_c=512,
        f_h=1,
        f_w=1,
        num_filters=1000,
    )


@pytest.fixture
def small_conv() -> LayerSpec:
    """A tiny convolution whose numbers are easy to compute by hand."""
    return LayerSpec(
        name="tiny",
        kind=LayerKind.CONV,
        in_h=8,
        in_w=8,
        in_c=4,
        f_h=3,
        f_w=3,
        num_filters=6,
        stride=1,
        padding=1,
    )
