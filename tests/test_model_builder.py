"""Model container and builder DSL."""

import pytest

from repro.nn import LayerKind, LayerSpec, Model, ModelBuilder, make_model, same_padding


def _layer(name, in_hw=8, in_c=4, n=4, kind=LayerKind.CONV, f=3, s=1, p=1):
    return LayerSpec(
        name=name,
        kind=kind,
        in_h=in_hw,
        in_w=in_hw,
        in_c=in_c,
        f_h=f,
        f_w=f,
        num_filters=n,
        stride=s,
        padding=p,
    )


class TestModel:
    def test_basic_container(self):
        model = make_model("m", [_layer("a"), _layer("b")])
        assert len(model) == 2
        assert model[0].name == "a"
        assert [l.name for l in model] == ["a", "b"]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_model("m", [])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            make_model("m", [_layer("a"), _layer("a")])

    def test_rejects_out_of_range_pairs(self):
        with pytest.raises(ValueError):
            make_model("m", [_layer("a"), _layer("b")], sequential_pairs=[5])

    def test_find(self):
        model = make_model("m", [_layer("a"), _layer("b")])
        assert model.find("b").name == "b"
        with pytest.raises(KeyError):
            model.find("zzz")

    def test_feeds_next_with_explicit_pairs(self):
        model = make_model("m", [_layer("a"), _layer("b")], sequential_pairs=[0])
        assert model.feeds_next(0)
        assert not model.feeds_next(1)
        assert not model.feeds_next(-1)

    def test_feeds_next_shape_fallback(self):
        # No explicit pairs: fall back to exact shape matching.
        a = _layer("a", in_hw=8, in_c=4, n=4)  # 8x8x4 out
        b = _layer("b", in_hw=8, in_c=4, n=2)  # consumes 8x8x4
        model = make_model("m", [a, b])
        assert model.feeds_next(0)

    def test_kind_histogram(self):
        model = make_model(
            "m", [_layer("a"), _layer("b", kind=LayerKind.DEPTHWISE, n=1)]
        )
        hist = model.kind_histogram()
        assert hist[LayerKind.CONV] == 1
        assert hist[LayerKind.DEPTHWISE] == 1

    def test_totals(self):
        model = make_model("m", [_layer("a"), _layer("b")])
        assert model.total_macs == sum(l.macs for l in model.layers)
        assert model.total_weight_elems == sum(l.filter_elems for l in model.layers)


class TestSamePadding:
    def test_odd_filters(self):
        assert same_padding(1) == 0
        assert same_padding(3) == 1
        assert same_padding(5) == 2
        assert same_padding(7) == 3


class TestBuilder:
    def test_linear_chain_records_pairs(self):
        b = ModelBuilder("m", (8, 8, 3))
        b.conv("c1", f=3, n=4)
        b.conv("c2", f=3, n=8)
        b.conv("c3", f=3, n=8)
        model = b.build()
        assert model.sequential_pairs == frozenset({0, 1})
        assert model.feeds_next(0) and model.feeds_next(1)

    def test_pooling_breaks_chain(self):
        b = ModelBuilder("m", (8, 8, 3))
        b.conv("c1", f=3, n=4)
        b.maxpool(2)
        b.conv("c2", f=3, n=4)
        model = b.build()
        assert not model.feeds_next(0)

    def test_shapes_thread_through(self):
        b = ModelBuilder("m", (224, 224, 3))
        b.conv("c1", f=7, n=64, s=2, p=3)
        b.maxpool(3, 2, p=1)
        t = b.cursor
        assert (t.h, t.w, t.c) == (56, 56, 64)

    def test_branches_fork_and_concat(self):
        b = ModelBuilder("m", (8, 8, 16))
        entry = b.fork()
        o1 = b.pw("b1", n=4)
        b.goto(entry)
        o2 = b.pw("b2", n=12)
        b.concat([o1, o2])
        assert b.cursor.c == 16
        model = b.build()
        # The forked tensor feeds two consumers: no sequential pair.
        assert not model.feeds_next(0)

    def test_concat_rejects_spatial_mismatch(self):
        b = ModelBuilder("m", (8, 8, 16))
        entry = b.fork()
        o1 = b.pw("b1", n=4, s=2)
        b.goto(entry)
        o2 = b.pw("b2", n=4)
        with pytest.raises(ValueError):
            b.concat([o1, o2])

    def test_concat_rejects_empty(self):
        b = ModelBuilder("m", (8, 8, 16))
        with pytest.raises(ValueError):
            b.concat([])

    def test_residual_breaks_chain(self):
        b = ModelBuilder("m", (8, 8, 4))
        shortcut = b.fork()
        b.conv("c1", f=3, n=4)
        b.add_residual(shortcut)
        b.conv("c2", f=3, n=4)
        model = b.build()
        assert not model.feeds_next(0)

    def test_residual_rejects_shape_mismatch(self):
        b = ModelBuilder("m", (8, 8, 4))
        shortcut = b.fork()
        b.conv("c1", f=3, n=8)
        with pytest.raises(ValueError):
            b.add_residual(shortcut)

    def test_fc_requires_flatten(self):
        b = ModelBuilder("m", (8, 8, 4))
        with pytest.raises(ValueError):
            b.fc("fc", n=10)

    def test_flatten_then_fc(self):
        b = ModelBuilder("m", (8, 8, 4))
        b.flatten()
        b.fc("fc", n=10)
        model = b.build()
        assert model[0].in_c == 8 * 8 * 4
        assert model[0].kind is LayerKind.FC

    def test_global_avgpool(self):
        b = ModelBuilder("m", (8, 8, 4))
        b.global_avgpool()
        assert (b.cursor.h, b.cursor.w, b.cursor.c) == (1, 1, 4)

    def test_depthwise_and_projection(self):
        b = ModelBuilder("m", (8, 8, 4))
        b.dw("d", f=3)
        b.projection("p", n=8, s=2)
        model = b.build()
        assert model[0].kind is LayerKind.DEPTHWISE
        assert model[1].kind is LayerKind.PROJECTION
        assert model[1].out_c == 8

    def test_auto_names_are_unique(self):
        b = ModelBuilder("m", (8, 8, 4))
        b.conv(f=3, n=4)
        b.conv(f=3, n=4)
        model = b.build()
        assert model[0].name != model[1].name
