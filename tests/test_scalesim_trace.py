"""SCALE-Sim-style DRAM trace generation."""

import pytest

from repro.arch import kib
from repro.nn import LayerKind, LayerSpec
from repro.scalesim import ScaleSimConfig, layer_traffic, lower_layer
from repro.scalesim.trace import (
    TraceLimitExceeded,
    generate_dram_trace,
    trace_to_csv,
)


def _small_workload():
    layer = LayerSpec("t", LayerKind.CONV, 12, 12, 4, 3, 3, 8, padding=1)
    return lower_layer(layer)


def _config(bi_kb=2, bf_kb=2):
    return ScaleSimConfig(ifmap_buf_bytes=kib(bi_kb), filter_buf_bytes=kib(bf_kb))


class TestTraceGeneration:
    def test_record_count_matches_traffic_model(self):
        workload = _small_workload()
        config = _config()
        records = list(generate_dram_trace(workload, config))
        traffic = layer_traffic(workload, config)
        assert len(records) == traffic.total

    def test_per_operand_counts(self):
        workload = _small_workload()
        config = _config()
        records = list(generate_dram_trace(workload, config))
        traffic = layer_traffic(workload, config)
        by_operand = {}
        for r in records:
            by_operand[r.operand] = by_operand.get(r.operand, 0) + 1
        assert by_operand["ifmap"] == traffic.ifmap_reads
        assert by_operand["filter"] == traffic.filter_reads
        assert by_operand["ofmap"] == traffic.ofmap_writes

    def test_addresses_within_operand_spaces(self):
        workload = _small_workload()
        config = _config()
        ifmap_end = workload.ifmap_unique
        filter_end = ifmap_end + workload.filter_unique
        ofmap_end = filter_end + workload.ofmap_unique
        for record in generate_dram_trace(workload, config):
            if record.operand == "ifmap":
                assert 0 <= record.address < ifmap_end
                assert not record.is_write
            elif record.operand == "filter":
                assert ifmap_end <= record.address < filter_end
                assert not record.is_write
            else:
                assert filter_end <= record.address < ofmap_end
                assert record.is_write

    def test_cycles_nonnegative_and_bounded(self):
        workload = _small_workload()
        config = _config()
        from repro.scalesim import compute_cycles

        bound = compute_cycles(workload, config)
        for record in generate_dram_trace(workload, config):
            assert 0 <= record.cycle <= bound

    def test_reads_unique_when_everything_resident(self):
        workload = _small_workload()
        config = _config(bi_kb=64, bf_kb=64)
        reads = [r for r in generate_dram_trace(workload, config) if not r.is_write]
        addresses = [r.address for r in reads]
        assert len(addresses) == len(set(addresses))  # each element once

    def test_depthwise_trace(self):
        layer = LayerSpec("d", LayerKind.DEPTHWISE, 12, 12, 8, 3, 3, 1, padding=1)
        workload = lower_layer(layer)
        config = _config()
        records = list(generate_dram_trace(workload, config))
        assert len(records) == layer_traffic(workload, config).total

    def test_limit_enforced(self):
        workload = _small_workload()
        with pytest.raises(TraceLimitExceeded):
            list(generate_dram_trace(workload, _config(), max_records=10))

    def test_csv_export(self, tmp_path):
        workload = _small_workload()
        config = _config(bi_kb=64, bf_kb=64)
        path = tmp_path / "trace.csv"
        count = trace_to_csv(generate_dram_trace(workload, config), path)
        lines = path.read_text().strip().split("\n")
        assert lines[0].startswith("cycle, address")
        assert len(lines) == count + 1
