"""Repo-wide lint/type gate.

Runs ``ruff check`` and ``mypy --strict src/repro`` when those tools are
installed (they are in CI via the ``lint``/``typecheck`` extras) and skips
otherwise, so the tier-1 suite stays runnable in minimal environments.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run(cmd: list[str]) -> subprocess.CompletedProcess[str]:
    return subprocess.run(
        cmd, cwd=REPO_ROOT, capture_output=True, text=True, timeout=600
    )


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean() -> None:
    proc = _run(["ruff", "check", "src", "tests", "examples"])
    assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}\n{proc.stderr}"


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_clean() -> None:
    proc = _run([sys.executable, "-m", "mypy", "--strict", "src/repro"])
    assert proc.returncode == 0, f"mypy findings:\n{proc.stdout}\n{proc.stderr}"


def test_py_typed_marker_present() -> None:
    assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()


def test_repro_lint_strict_clean() -> None:
    """The domain lint (R0xx rules) passes in strict mode, as CI runs it.

    Mirrors the CI gate exactly, including the ``--max-seconds 60`` wall-
    time budget on the interprocedural passes; the report's own wall-time
    line must also appear in the output.
    """
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "lint",
            "src/repro",
            "--strict",
            "--max-seconds",
            "60",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert proc.returncode == 0, f"repro lint findings:\n{proc.stdout}\n{proc.stderr}"
    assert "wall time" in proc.stdout


def test_trace_out_smoke_emits_schema_valid_trace(tmp_path: Path) -> None:
    """CI smoke: ``--trace-out`` writes a valid ``repro-telemetry/1`` file.

    Mirrors the CI telemetry step (``python -m repro.experiments ...
    --trace-out``); the emitted JSON must pass the schema validator and
    carry the Chrome ``trace_event`` keys Perfetto requires.
    """
    import json

    from repro.report.diagnostics import validate_telemetry_payload

    trace = tmp_path / "trace.json"
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            "table2",
            "--trace-out",
            str(trace),
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
        env={
            **os.environ,
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "REPRO_CACHE_DIR": str(tmp_path / "cache"),
        },
    )
    assert proc.returncode == 0, f"smoke run failed:\n{proc.stdout}\n{proc.stderr}"
    assert "trace written to" in proc.stdout
    payload = json.loads(trace.read_text())
    assert validate_telemetry_payload(payload) == []
    assert payload["traceEvents"], "smoke trace carries no events"
    for event in payload["traceEvents"]:
        assert {"name", "ph", "ts", "pid", "tid"} <= set(event)


def test_no_unused_imports() -> None:
    """Fallback for environments without ruff: flag obviously-unused imports.

    Conservative approximation of pyflakes F401 — a name imported at module
    top level that never appears again anywhere in the source text.  Names
    re-exported via ``__all__`` or imported under ``TYPE_CHECKING`` still
    appear textually, so they do not trip this.
    """
    import ast

    offenders: list[str] = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        source = path.read_text()
        tree = ast.parse(source)
        imported: list[tuple[str, int]] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = (alias.asname or alias.name).split(".")[0]
                    imported.append((name, node.lineno))
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imported.append((alias.asname or alias.name, node.lineno))
        for name, lineno in imported:
            if name == "annotations":
                continue
            # Count textual occurrences beyond the import line itself.
            uses = sum(
                1
                for i, line in enumerate(source.splitlines(), start=1)
                if i != lineno and name in line
            )
            if uses == 0:
                offenders.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: {name}")
    assert not offenders, "unused imports:\n" + "\n".join(offenders)
