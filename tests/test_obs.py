"""Telemetry subsystem (:mod:`repro.obs`): tracer, metrics, audit, export.

Covers the tracer's span lifecycle and fork/worker semantics, the
metrics registry's unit-suffix contract and snapshot merging, the
planner decision audit trail, the Chrome-trace / ``repro-telemetry/1``
exporters, the monkeypatchable clock, and the bit-identical-results
parity guarantee (tracing on vs off).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.analyzer import Objective, plan_heterogeneous
from repro.arch import AcceleratorSpec, kib
from repro.nn.zoo import get_model
from repro.obs import (
    ENV_TRACE,
    MetricsRegistry,
    NullTracer,
    SpanRecord,
    Tracer,
    clock,
    configure_worker,
    diff_snapshots,
    disable_tracing,
    enable_tracing,
    export,
    get_tracer,
    has_unit_suffix,
    metrics_registry,
    set_tracer,
)
from repro.obs.audit import CandidateRecord, TrailBuilder
from repro.report.diagnostics import TELEMETRY_SCHEMA_ID, validate_telemetry_payload


@pytest.fixture(autouse=True)
def _clean_telemetry(monkeypatch):
    """Each test starts and ends with the no-op tracer and empty metrics."""
    monkeypatch.delenv(ENV_TRACE, raising=False)
    set_tracer(NullTracer())
    metrics_registry().reset()
    yield
    disable_tracing()
    metrics_registry().reset()


# ----------------------------------------------------------------------
# Clock
# ----------------------------------------------------------------------


def test_clock_is_monotonic_and_elapsed_is_seconds():
    start = clock.monotonic_ns()
    assert clock.monotonic_ns() >= start
    assert clock.elapsed_seconds(start) >= 0.0


def test_clock_is_monkeypatchable(monkeypatch):
    monkeypatch.setattr(clock, "monotonic_ns", lambda: 5_000_000_000)
    assert clock.elapsed_seconds(2_000_000_000) == 3.0


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


def test_default_tracer_is_noop():
    tracer = get_tracer()
    assert not tracer.enabled
    with tracer.start("anything", key="value") as span:
        span.set_attr("more", 1)
    assert tracer.drain() == ()


def test_tracer_records_nested_spans_with_depth_and_attrs():
    tracer = Tracer()
    with tracer.start("outer", model="m") as outer:
        with tracer.start("inner") as inner:
            inner.set_attr("steps_count", 3)
        outer.set_attr("done", True)
    inner_rec, outer_rec = tracer.drain()  # inner exits (records) first
    assert inner_rec.name == "inner" and inner_rec.depth == 1
    assert outer_rec.name == "outer" and outer_rec.depth == 0
    assert inner_rec.attr_dict() == {"steps_count": 3}
    assert outer_rec.attr_dict() == {"done": True, "model": "m"}
    assert inner_rec.duration_ns >= 0
    assert outer_rec.start_ns <= inner_rec.start_ns
    assert tracer.drain() == ()  # drain moves, never duplicates


def test_span_name_is_positional_only():
    tracer = Tracer()
    with tracer.start("artifact", name="table2"):
        pass
    (record,) = tracer.drain()
    assert record.name == "artifact"
    assert record.attr_dict() == {"name": "table2"}


def test_span_records_error_attribute_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.start("risky"):
            raise RuntimeError("boom")
    (record,) = tracer.drain()
    assert record.attr_dict()["error"] == "RuntimeError"


def test_ingest_merges_external_records():
    tracer = Tracer()
    foreign = SpanRecord(name="worker_span", start_ns=1, end_ns=2, pid=99, tid=1, depth=0)
    tracer.ingest([foreign])
    assert tracer.drain() == (foreign,)


def test_enable_disable_tracing_toggle_env_and_tracer(monkeypatch):
    import os

    tracer = enable_tracing()
    assert get_tracer() is tracer and tracer.enabled
    assert os.environ.get(ENV_TRACE) == "1"
    disable_tracing()
    assert not get_tracer().enabled
    assert ENV_TRACE not in os.environ


def test_configure_worker_follows_env_flag(monkeypatch):
    monkeypatch.setenv(ENV_TRACE, "1")
    configure_worker()
    assert get_tracer().enabled
    monkeypatch.delenv(ENV_TRACE)
    configure_worker()
    assert not get_tracer().enabled


def test_configure_worker_resets_inherited_metrics():
    metrics_registry().counter("inherited_count").add(5)
    configure_worker()
    assert metrics_registry().snapshot()["counters"] == {}


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


def test_metric_names_require_unit_suffix():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("cache_hits")
    with pytest.raises(ValueError):
        registry.gauge("depth")
    with pytest.raises(ValueError):
        registry.histogram("latency")
    assert has_unit_suffix("cache_hits_count")
    assert not has_unit_suffix("cache_hits")


def test_counter_gauge_histogram_roundtrip():
    registry = MetricsRegistry()
    registry.counter("hits_count").add(2)
    registry.counter("hits_count").add(1)  # create-or-get, same instrument
    registry.gauge("fill_ratio").set(0.5)
    registry.histogram("wait_seconds").observe(1.0)
    registry.histogram("wait_seconds").observe(3.0)
    snap = registry.snapshot()
    assert snap["counters"] == {"hits_count": 3.0}
    assert snap["gauges"] == {"fill_ratio": 0.5}
    assert snap["histograms"] == {
        "wait_seconds": {"count": 2.0, "sum": 4.0, "min": 1.0, "max": 3.0}
    }


def test_counter_rejects_negative_amounts():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("hits_count").add(-1)


def test_merge_accumulates_counters_and_pools_histograms():
    parent, worker = MetricsRegistry(), MetricsRegistry()
    parent.counter("hits_count").add(1)
    worker.counter("hits_count").add(2)
    worker.histogram("wait_seconds").observe(5.0)
    parent.histogram("wait_seconds").observe(1.0)
    parent.merge(worker.snapshot())
    snap = parent.snapshot()
    assert snap["counters"] == {"hits_count": 3.0}
    assert snap["histograms"]["wait_seconds"]["count"] == 2.0
    assert snap["histograms"]["wait_seconds"]["max"] == 5.0


def test_diff_snapshots_subtracts_counters_and_drops_zero_deltas():
    registry = MetricsRegistry()
    registry.counter("hits_count").add(2)
    registry.counter("static_count").add(1)
    before = registry.snapshot()
    registry.counter("hits_count").add(3)
    delta = diff_snapshots(before, registry.snapshot())
    assert delta["counters"] == {"hits_count": 3.0}  # zero-delta dropped


# ----------------------------------------------------------------------
# Decision audit trail
# ----------------------------------------------------------------------


def _candidate(label, *, chosen=False, feasible=True, reason="r"):
    return CandidateRecord(
        label=label,
        policy=label.replace("+p", ""),
        prefetch=label.endswith("+p"),
        feasible=feasible,
        chosen=chosen,
        reason=reason,
        memory_bytes=100 if feasible else None,
        accesses_bytes=200 if feasible else None,
        latency_cycles=300.0 if feasible else None,
    )


def test_candidate_status_values():
    assert _candidate("p1", chosen=True).status == "chosen"
    assert _candidate("p2").status == "rejected"
    assert _candidate("p3", feasible=False).status == "infeasible"


def test_trail_builder_rechoose_flips_winner_with_reason():
    builder = TrailBuilder(scheme="het", objective="accesses", glb_bytes=65536)
    builder.add_layer(0, "conv1", [_candidate("p1", chosen=True), _candidate("p2+p")])
    builder.rechoose(0, "p2+p", "selected by inter-layer DP")
    builder.note("inter-layer pass: 1 ofmap donation(s) applied")
    trail = builder.build()
    (decision,) = trail.layers
    assert decision.chosen is not None and decision.chosen.label == "p2+p"
    old = next(c for c in decision.candidates if c.label == "p1")
    assert not old.chosen and "overridden by inter-layer DP" in old.reason
    assert trail.notes == ("inter-layer pass: 1 ofmap donation(s) applied",)


def test_trail_payload_is_json_safe():
    builder = TrailBuilder(scheme="het", objective="accesses", glb_bytes=65536)
    builder.add_layer(
        0, "conv1", [_candidate("p1", chosen=True), _candidate("p4", feasible=False)]
    )
    payload = builder.build().to_payload()
    assert json.loads(json.dumps(payload)) == payload
    statuses = [c["status"] for c in payload["layers"][0]["candidates"]]
    assert statuses == ["chosen", "infeasible"]


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def _spans():
    return [
        SpanRecord(name="b", start_ns=2_000, end_ns=5_000, pid=2, tid=1, depth=0),
        SpanRecord(
            name="a",
            start_ns=1_000,
            end_ns=4_000,
            pid=1,
            tid=7,
            depth=0,
            attrs=(("layer", "conv1"),),
        ),
    ]


def test_chrome_trace_events_shape_and_normalization():
    events = export.chrome_trace_events(_spans())
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["pid"] for e in meta} == {1, 2}  # one process_name rail per pid
    assert all({"name", "ph", "ts", "pid", "tid", "args"} <= set(e) for e in events)
    first, second = complete  # sorted by (pid, tid, start)
    assert first["name"] == "a" and second["name"] == "b"
    assert first["ts"] == 0.0  # earliest span normalized to the origin
    assert second["ts"] == 1.0 and second["dur"] == 3.0  # microseconds
    assert first["args"] == {"layer": "conv1"}


def test_telemetry_payload_schema_id_matches_diagnostics_literal():
    """The validator's literal and the exporter's constant must agree."""
    assert export.TELEMETRY_SCHEMA == TELEMETRY_SCHEMA_ID


def test_telemetry_payload_validates_and_roundtrips(tmp_path):
    registry = MetricsRegistry()
    registry.counter("hits_count").add(1)
    registry.histogram("wait_seconds").observe(0.5)
    payload = export.telemetry_payload(
        _spans(), registry.snapshot(), meta={"tool": "test"}
    )
    assert validate_telemetry_payload(payload) == []
    path = export.write_trace(tmp_path / "sub" / "trace.json", payload)
    assert json.loads(path.read_text()) == json.loads(json.dumps(payload))


def test_validator_rejects_malformed_payloads():
    assert validate_telemetry_payload([]) == ["payload is not an object"]
    problems = validate_telemetry_payload(
        {
            "schema": "nope/9",
            "displayTimeUnit": "ms",
            "meta": {},
            "traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1, "args": {}}],
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }
    )
    assert any("schema" in p for p in problems)
    assert any(".dur" in p for p in problems)  # X events need a duration
    assert validate_telemetry_payload(
        {
            "schema": TELEMETRY_SCHEMA_ID,
            "displayTimeUnit": "ms",
            "meta": {},
            "traceEvents": [],
            "metrics": {"counters": {"bad": "NaN-ish"}, "gauges": {}, "histograms": {}},
        }
    ) == ["metrics.counters must map names to numbers"]


# ----------------------------------------------------------------------
# Planner integration: audit always on, tracing changes nothing
# ----------------------------------------------------------------------


def test_plans_are_bit_identical_with_tracing_on_and_off():
    model = get_model("AlexNet")
    spec = AcceleratorSpec(glb_bytes=kib(64))
    plan_off = plan_heterogeneous(model, spec, Objective.ACCESSES)
    tracer = enable_tracing()
    plan_on = plan_heterogeneous(model, spec, Objective.ACCESSES)
    spans = tracer.drain()
    disable_tracing()
    assert plan_off == plan_on  # results identical (audit excluded from compare)
    assert plan_off.audit is not None and plan_on.audit is not None
    assert plan_off.audit.to_payload() == plan_on.audit.to_payload()
    names = {s.name for s in spans}
    assert "plan_heterogeneous" in names and "plan_layer" in names


def test_plan_audit_has_one_winner_and_reasoned_rejections_per_layer():
    plan = plan_heterogeneous(
        get_model("AlexNet"), AcceleratorSpec(glb_bytes=kib(64)), Objective.ACCESSES
    )
    trail = plan.explain()
    assert len(trail.layers) == len(plan.assignments)
    for decision, assignment in zip(trail.layers, plan.assignments):
        assert decision.chosen is not None
        assert decision.chosen.label == assignment.label
        assert all(c.reason for c in decision.candidates)
    assert any(c.status == "rejected" for d in trail.layers for c in d.candidates)


def test_explain_synthesizes_trail_when_audit_missing():
    plan = plan_heterogeneous(
        get_model("AlexNet"), AcceleratorSpec(glb_bytes=kib(64)), Objective.ACCESSES
    )
    stripped = dataclasses.replace(plan, audit=None)
    trail = stripped.explain()
    assert len(trail.layers) == len(plan.assignments)
    assert any("synthesized" in note for note in trail.notes)
    for decision in trail.layers:
        assert decision.chosen is not None


# ----------------------------------------------------------------------
# Engine integration: worker telemetry merges; counters match the cache
# ----------------------------------------------------------------------


def test_warm_parallel_trace_counter_matches_cache_hits(tmp_path, monkeypatch):
    from repro.experiments import cache
    from repro.experiments.engine import run_experiments

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    run_experiments(["dram-sweep"], jobs=1)  # prime the persistent cache
    cache.stats.reset()
    enable_tracing()
    try:
        report = run_experiments(["dram-sweep"], jobs=2)
    finally:
        disable_tracing()
    payload = report.telemetry_payload()
    assert validate_telemetry_payload(payload) == []
    hits = payload["metrics"]["counters"].get("plan_cache_hits_count", 0.0)
    assert report.cache_hits > 0
    assert hits == float(report.cache_hits)
    events = payload["traceEvents"]
    assert any(e["name"] == "artifact" for e in events)
    assert len({e["pid"] for e in events}) >= 2  # parent + worker spans merged
    trace_path = report.write_trace(tmp_path / "trace.json")
    assert validate_telemetry_payload(json.loads(trace_path.read_text())) == []
    assert "plan_cache_hits_count" in report.metrics_table().render()
