"""Property-based tests: the analyzer never emits an unverifiable plan.

Hypothesis generates random-but-valid layers and small random models; every
candidate a policy produces, and every execution plan the planner emits,
must pass the full static invariant catalog with zero diagnostics.  This
is the strongest form of the tentpole claim: the verifier and the
analyzer agree not just on the paper networks but on arbitrary inputs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyzer import Objective, plan_heterogeneous
from repro.arch import AcceleratorSpec, kib
from repro.estimators.evaluate import evaluate_layer
from repro.nn import LayerKind, LayerSpec
from repro.nn.builder import ModelBuilder
from repro.policies import FALLBACK_POLICY, NAMED_POLICIES
from repro.verify import verify_candidate, verify_plan


@st.composite
def layers(draw) -> LayerSpec:
    """Random but valid conv/dw/pw/fc layers of modest size."""
    kind = draw(
        st.sampled_from(
            [LayerKind.CONV, LayerKind.DEPTHWISE, LayerKind.POINTWISE, LayerKind.FC]
        )
    )
    if kind is LayerKind.FC:
        return LayerSpec(
            name="l",
            kind=kind,
            in_h=1,
            in_w=1,
            in_c=draw(st.integers(1, 512)),
            f_h=1,
            f_w=1,
            num_filters=draw(st.integers(1, 512)),
        )
    in_hw = draw(st.integers(8, 64))
    in_c = draw(st.integers(1, 64))
    if kind is LayerKind.POINTWISE:
        f = 1
        pad = 0
    else:
        f = draw(st.sampled_from([1, 3, 5]))
        pad = draw(st.integers(0, (f - 1) // 2))
    stride = draw(st.sampled_from([1, 2]))
    num_filters = 1 if kind is LayerKind.DEPTHWISE else draw(st.integers(1, 64))
    return LayerSpec(
        name="l",
        kind=kind,
        in_h=in_hw,
        in_w=in_hw,
        in_c=in_c,
        f_h=f,
        f_w=f,
        num_filters=num_filters,
        stride=stride,
        padding=pad,
    )


@st.composite
def small_models(draw):
    """Short straight-line CNNs with chainable (donatable) edges."""
    b = ModelBuilder("prop", (draw(st.integers(12, 40)), draw(st.integers(12, 40)), draw(st.integers(3, 32))))
    for _ in range(draw(st.integers(2, 5))):
        op = draw(st.sampled_from(["conv", "pw", "dw"]))
        if op == "conv":
            b.conv(f=draw(st.sampled_from([1, 3])), n=draw(st.integers(4, 48)),
                   s=draw(st.sampled_from([1, 2])))
        elif op == "pw":
            b.pw(n=draw(st.integers(4, 64)))
        else:
            b.dw(s=draw(st.sampled_from([1, 2])))
    return b.build()


budgets = st.integers(2_000, 1 << 22)
ALL_POLICIES = (*NAMED_POLICIES, FALLBACK_POLICY)


@settings(max_examples=120, deadline=None)
@given(layer=layers(), budget=budgets, prefetch=st.booleans())
def test_every_emitted_candidate_verifies(layer, budget, prefetch) -> None:
    for policy in ALL_POLICIES:
        candidate = policy.plan(layer, budget, prefetch)
        if candidate is None:
            continue
        report = verify_candidate(candidate, budget)
        assert report.ok, report.render()


@settings(max_examples=60, deadline=None)
@given(layer=layers(), glb_kb=st.sampled_from([64, 128, 256, 512, 1024]))
def test_every_evaluation_verifies_under_spec(layer, glb_kb) -> None:
    spec = AcceleratorSpec(glb_bytes=kib(glb_kb))
    for evaluation in evaluate_layer(layer, spec):
        report = verify_candidate(evaluation.plan, spec)
        assert report.ok, report.render()


@settings(max_examples=40, deadline=None)
@given(
    model=small_models(),
    glb_kb=st.sampled_from([64, 256, 1024]),
    interlayer=st.booleans(),
    objective=st.sampled_from([Objective.ACCESSES, Objective.LATENCY]),
)
def test_every_heterogeneous_plan_verifies(model, glb_kb, interlayer, objective) -> None:
    spec = AcceleratorSpec(glb_bytes=kib(glb_kb))
    plan = plan_heterogeneous(model, spec, objective, interlayer=interlayer)
    report = verify_plan(plan)
    assert report.ok, report.render()
