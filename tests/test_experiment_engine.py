"""Experiment engine: persistent cache, parallel parity, CLI errors.

Every test isolates the persistent cache in a tmp directory via
``REPRO_CACHE_DIR`` (worker processes inherit it) and drops the
in-process memoization so the on-disk path is actually exercised.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.analyzer import Objective
from repro.arch.spec import AcceleratorSpec
from repro.experiments import cache, common
from repro.experiments.engine import plan_tasks, run_experiments
from repro.experiments.runner import ARTIFACTS, UnknownArtifactError, main, run_all, run_report
from repro.manager import MemoryManager
from repro.nn.zoo import get_model

#: Fast artifact subset used for the parity checks.
FAST_SUBSET = ["table2", "fig1", "dram-sweep"]


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the persistent cache at a fresh tmp dir and reset memoization."""
    monkeypatch.setenv(cache.ENV_CACHE_DIR, str(tmp_path / "plan-cache"))
    # Popped directly (not via monkeypatch) because `main(["--no-cache", ...])`
    # exports the variable itself; monkeypatch must not restore that leak.
    os.environ.pop(cache.ENV_NO_CACHE, None)
    common.clear_in_process_caches()
    cache.stats.reset()
    yield
    os.environ.pop(cache.ENV_NO_CACHE, None)
    common.clear_in_process_caches()
    cache.stats.reset()


class TestCacheKeys:
    def test_data_width_always_changes_the_key(self):
        """Two specs differing *only* in data width never share an entry."""
        model = get_model("MobileNet")
        spec8 = AcceleratorSpec(data_width_bits=8)
        spec16 = AcceleratorSpec(data_width_bits=16)
        for scheme in ("het", "hom"):
            key8 = cache.plan_cache_key(scheme, model, spec8, Objective.ACCESSES)
            key16 = cache.plan_cache_key(scheme, model, spec16, Objective.ACCESSES)
            assert key8 != key16

    def test_data_width_entries_disjoint_on_disk(self):
        """Planning at 8- and 16-bit widths stores two distinct entries."""
        common.het_plan("MobileNet", 64, Objective.ACCESSES, 8)
        assert cache.entry_count() == 1
        common.het_plan("MobileNet", 64, Objective.ACCESSES, 16)
        assert cache.entry_count() == 2
        # And the 16-bit lookup was a miss, not a stale 8-bit hit.
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_interlayer_mode_in_key(self):
        model = get_model("MnasNet")
        spec = AcceleratorSpec()
        opp = cache.plan_cache_key(
            "het", model, spec, Objective.ACCESSES, interlayer=True
        )
        joint = cache.plan_cache_key(
            "het", model, spec, Objective.ACCESSES, interlayer=True,
            interlayer_mode="joint",
        )
        off = cache.plan_cache_key("het", model, spec, Objective.ACCESSES)
        assert len({opp, joint, off}) == 3

    def test_spec_payload_covers_every_field(self):
        payload = cache.spec_payload(AcceleratorSpec())
        assert set(payload) == {
            f.name for f in dataclasses.fields(AcceleratorSpec)
        }
        assert payload["data_width_bits"] == 8

    def test_dram_fields_in_payload(self):
        from repro.dram import DEFAULT_DDR4_SPEC

        flat = cache.spec_payload(AcceleratorSpec())
        banked = cache.spec_payload(AcceleratorSpec().with_dram(DEFAULT_DDR4_SPEC))
        assert flat["dram"] is None
        assert banked["dram"]["channels"] == DEFAULT_DDR4_SPEC.channels
        assert flat != banked

    def test_model_digest_depends_on_dims(self):
        base = cache.model_digest(get_model("MobileNetV2"))
        resized = cache.model_digest(get_model("MobileNetV2", input_size=128))
        assert base != resized

    def test_schema_version_in_key(self, monkeypatch):
        model = get_model("MobileNet")
        spec = AcceleratorSpec()
        key1 = cache.plan_cache_key("het", model, spec, Objective.ACCESSES)
        monkeypatch.setattr(cache, "CACHE_SCHEMA_VERSION", cache.CACHE_SCHEMA_VERSION + 1)
        key2 = cache.plan_cache_key("het", model, spec, Objective.ACCESSES)
        assert key1 != key2


class TestCacheStorage:
    def test_round_trip_is_bit_identical(self):
        plan = common.het_plan("MobileNet", 64)
        common.clear_in_process_caches()
        again = common.het_plan("MobileNet", 64)
        assert cache.stats.hits >= 1
        assert again.total_accesses_bytes == plan.total_accesses_bytes
        assert again.total_latency_cycles == plan.total_latency_cycles
        assert [a.label for a in again] == [a.label for a in plan]

    def test_corrupt_entry_recomputes(self):
        common.het_plan("MobileNet", 64)
        [entry] = list(cache.cache_dir().rglob("*.pkl"))
        entry.write_bytes(b"not a pickle")
        common.clear_in_process_caches()
        plan = common.het_plan("MobileNet", 64)
        assert plan.total_accesses_bytes > 0
        assert not entry.exists() or entry.read_bytes() != b"not a pickle"

    def test_no_cache_env_disables(self, monkeypatch):
        monkeypatch.setenv(cache.ENV_NO_CACHE, "1")
        common.het_plan("MobileNet", 64)
        assert cache.entry_count() == 0

    def test_clear_removes_entries(self):
        common.het_plan("MobileNet", 64)
        common.hom_plan("MobileNet", 64)
        assert cache.entry_count() == 2
        assert cache.clear() == 2
        assert cache.entry_count() == 0

    def test_manager_plan_cached_shares_keys_with_common(self):
        spec = common.spec_for(64)
        plan = MemoryManager(spec).plan_cached(get_model("MobileNet"))
        assert cache.entry_count() == 1
        common.clear_in_process_caches()
        cache.stats.reset()
        via_common = common.het_plan("MobileNet", 64)
        assert cache.stats.hits == 1  # same entry, no recompute
        assert via_common.total_accesses_bytes == plan.total_accesses_bytes


class TestImmutability:
    def test_baseline_results_read_only(self):
        results = common.baseline_results("MobileNet", 64)
        with pytest.raises(TypeError):
            results["sa_50_50"] = None  # type: ignore[index]
        with pytest.raises((TypeError, AttributeError)):
            results.clear()  # type: ignore[attr-defined]
        # The mapping refetched later is uncorrupted.
        again = common.baseline_results("MobileNet", 64)
        assert set(again) == {"sa_25_75", "sa_50_50", "sa_75_25"}

    def test_plans_are_frozen(self):
        plan = common.het_plan("MobileNet", 64)
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.scheme = "tampered"  # type: ignore[misc]
        assignment = plan.assignments[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            assignment.accesses_bytes = 0  # type: ignore[misc]


class TestUnknownArtifact:
    def test_run_all_raises_typed_error(self):
        with pytest.raises(UnknownArtifactError) as err:
            run_all(only=["fig99", "table2"])
        assert err.value.unknown == ["fig99"]
        assert "table2" in err.value.available
        assert "fig99" in str(err.value)

    def test_error_is_a_key_error(self):
        with pytest.raises(KeyError):
            run_all(only=["fig99"])

    def test_module_cli_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fig99"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "fig99" in err
        assert "table2" in err  # available ids are listed

    def test_repro_cli_exits_2(self, capsys):
        from repro.cli import main as repro_main

        with pytest.raises(SystemExit) as exc:
            repro_main(["experiments", "fig99"])
        assert exc.value.code == 2
        assert "available artifacts" in capsys.readouterr().err

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit) as exc:
            main(["--jobs", "0", "table2"])
        assert exc.value.code == 2


def _renders(tables):
    return [t.render() for t in tables]


class TestParity:
    """Serial, parallel and warm-cache runs must be bit-identical."""

    def test_serial_vs_parallel_vs_warm(self):
        serial = run_experiments(FAST_SUBSET, jobs=1)
        serial_out = _renders(serial.tables)

        common.clear_in_process_caches()
        parallel = run_experiments(FAST_SUBSET, jobs=4)
        assert _renders(parallel.tables) == serial_out

        common.clear_in_process_caches()
        warm = run_experiments(FAST_SUBSET, jobs=1)
        assert _renders(warm.tables) == serial_out
        assert warm.cache_hits > 0

    def test_csv_export_identical(self, tmp_path):
        run_all(csv_dir=str(tmp_path / "a"), only=["table2", "dram-sweep"])
        common.clear_in_process_caches()
        run_all(csv_dir=str(tmp_path / "b"), only=["table2", "dram-sweep"], jobs=2)
        for name in ("table2", "dram-sweep"):
            cold = (tmp_path / "a" / f"{name}.csv").read_text()
            warm = (tmp_path / "b" / f"{name}.csv").read_text()
            assert cold == warm


class TestInstrumentation:
    def test_report_summary_and_bench(self, tmp_path):
        report = run_report(only=["table2", "dram-sweep"])
        summary = report.summary_table().render()
        assert "table2" in summary and "dram-sweep" in summary
        assert "TOTAL" in summary

        bench = tmp_path / "BENCH_experiments.json"
        report.write_bench(bench)
        record = json.loads(bench.read_text())
        assert record["jobs"] == 1
        assert record["cache"]["schema_version"] == cache.CACHE_SCHEMA_VERSION
        names = [a["name"] for a in record["artifacts"]]
        assert names == ["table2", "dram-sweep"]
        assert all(a["seconds"] >= 0 for a in record["artifacts"])

    def test_warm_run_reports_hits(self):
        run_report(only=["dram-sweep"])
        common.clear_in_process_caches()
        warm = run_report(only=["dram-sweep"])
        assert warm.results[0].cache_hits >= 6  # one het plan per zoo model

    def test_plan_tasks_cover_heavy_artifacts(self):
        tasks = plan_tasks(list(ARTIFACTS))
        kinds = {t[0] for t in tasks}
        assert kinds == {"het", "hom", "baseline"}
        # fig7 sweeps widths: 16- and 32-bit tasks must be present.
        widths = {t[4] for t in tasks}
        assert {8, 16, 32} <= widths
        # No duplicates.
        assert len(tasks) == len(set(tasks))

    def test_plan_tasks_empty_for_cheap_artifacts(self):
        assert plan_tasks(["table2", "fig1", "fig3"]) == []


class TestRunnerCli:
    def test_jobs_flag_and_bench(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        assert main(["--jobs", "2", "--bench", str(bench), "table2", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Experiment engine summary (jobs=2)" in out
        assert json.loads(bench.read_text())["jobs"] == 2

    def test_clear_cache_flag(self, capsys):
        common.het_plan("MobileNet", 64)
        assert cache.entry_count() == 1
        assert main(["--clear-cache"]) == 0
        assert cache.entry_count() == 0
        assert "cleared 1 cache entries" in capsys.readouterr().out

    def test_no_cache_flag(self, capsys):
        assert main(["--no-cache", "table2"]) == 0
        assert cache.entry_count() == 0
