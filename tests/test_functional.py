"""Functional (numerical) validation of every policy's tiling.

For each policy: execute a layer through the policy's tile schedule on
random tensors and assert (a) the computed ofmap equals a direct
convolution and (b) the counted off-chip traffic equals the plan's
declared traffic, element for element.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import LayerKind, LayerSpec
from repro.policies import FALLBACK_POLICY, NAMED_POLICIES, policy_by_name
from repro.sim.functional import (
    DramCounter,
    pad_ifmap,
    random_tensors,
    run_layer_direct,
    run_layer_with_plan,
)

RNG = np.random.default_rng(1234)
BIG = 1 << 40


def _check(plan, layer, ifmap, filters):
    reference = run_layer_direct(layer, ifmap, filters)
    out, counter = run_layer_with_plan(plan, ifmap, filters)
    np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-9)
    assert counter.matches(plan), f"{plan.label}: {counter.mismatch_report(plan)}"


@pytest.mark.parametrize("policy", NAMED_POLICIES, ids=lambda p: p.name)
class TestNamedPoliciesNumerically:
    def test_dense_conv(self, policy, small_conv):
        ifmap, filters = random_tensors(small_conv, RNG)
        plan = policy.plan(small_conv, BIG, False)
        _check(plan, small_conv, ifmap, filters)

    def test_strided_conv(self, policy):
        layer = LayerSpec("s", LayerKind.CONV, 9, 9, 3, 3, 3, 5, stride=2, padding=1)
        ifmap, filters = random_tensors(layer, RNG)
        plan = policy.plan(layer, BIG, False)
        _check(plan, layer, ifmap, filters)

    def test_depthwise(self, policy):
        layer = LayerSpec("d", LayerKind.DEPTHWISE, 10, 10, 6, 3, 3, 1, padding=1)
        ifmap, filters = random_tensors(layer, RNG)
        plan = policy.plan(layer, BIG, False)
        _check(plan, layer, ifmap, filters)

    def test_pointwise(self, policy):
        layer = LayerSpec("p", LayerKind.POINTWISE, 6, 6, 8, 1, 1, 12)
        ifmap, filters = random_tensors(layer, RNG)
        plan = policy.plan(layer, BIG, False)
        if plan is None:
            pytest.skip(f"{policy.name} infeasible for this layer")
        _check(plan, layer, ifmap, filters)


class TestMemoryConstrainedBlocks:
    """P4/P5 with small budgets exercise the remainder-block paths."""

    def test_p4_small_blocks(self, small_conv):
        ifmap, filters = random_tensors(small_conv, RNG)
        window = small_conv.f_h * small_conv.padded_w * small_conv.in_c
        for budget in (window + 2 * 44, window + 4 * 44):
            plan = policy_by_name("p4").plan(small_conv, budget, False)
            assert plan is not None
            _check(plan, small_conv, ifmap, filters)

    def test_p5_small_blocks(self, small_conv):
        ifmap, filters = random_tensors(small_conv, RNG)
        plan = policy_by_name("p5").plan(small_conv, 176, False)
        assert plan is not None and plan.block_size == 2
        _check(plan, small_conv, ifmap, filters)

    def test_tiled_fallback_bands(self, small_conv):
        ifmap, filters = random_tensors(small_conv, RNG)
        for budget in (200, 400, 1000):
            plan = FALLBACK_POLICY.plan(small_conv, budget, False)
            if plan is None:
                continue
            _check(plan, small_conv, ifmap, filters)

    def test_tiled_fallback_depthwise(self):
        layer = LayerSpec("d", LayerKind.DEPTHWISE, 10, 10, 6, 3, 3, 1, padding=1)
        ifmap, filters = random_tensors(layer, RNG)
        plan = FALLBACK_POLICY.plan(layer, 150, False)
        assert plan is not None
        _check(plan, layer, ifmap, filters)


class TestHelpers:
    def test_pad_ifmap(self, small_conv):
        ifmap = np.ones((8, 8, 4))
        padded = pad_ifmap(small_conv, ifmap)
        assert padded.shape == (10, 10, 4)
        assert padded[0].sum() == 0 and padded[1, 1:-1].sum() == 8 * 4

    def test_counter_mismatch_report(self, small_conv):
        plan = policy_by_name("p1").plan(small_conv, BIG, False)
        counter = DramCounter()
        assert not counter.matches(plan)
        assert "ifmap 0 vs" in counter.mismatch_report(plan)

    def test_shape_validation(self, small_conv):
        plan = policy_by_name("p1").plan(small_conv, BIG, False)
        with pytest.raises(ValueError, match="shape"):
            run_layer_with_plan(plan, np.zeros((3, 3, 1)), np.zeros((6, 3, 3, 4)))


@st.composite
def tiny_layers(draw):
    """Small random layers for property-based numerical validation."""
    kind = draw(st.sampled_from([LayerKind.CONV, LayerKind.DEPTHWISE]))
    hw = draw(st.integers(5, 12))
    c = draw(st.integers(1, 5))
    f = draw(st.sampled_from([1, 3]))
    stride = draw(st.sampled_from([1, 2]))
    pad = draw(st.integers(0, (f - 1) // 2))
    n = 1 if kind is LayerKind.DEPTHWISE else draw(st.integers(1, 6))
    return LayerSpec("t", kind, hw, hw, c, f, f, n, stride=stride, padding=pad)


@settings(max_examples=40, deadline=None)
@given(layer=tiny_layers(), budget=st.integers(150, 1 << 20))
def test_property_all_policies_numerically_correct(layer, budget):
    rng = np.random.default_rng(0)
    ifmap, filters = random_tensors(layer, rng)
    reference = run_layer_direct(layer, ifmap, filters)
    for policy in (*NAMED_POLICIES, FALLBACK_POLICY):
        plan = policy.plan(layer, budget, False)
        if plan is None:
            continue
        out, counter = run_layer_with_plan(plan, ifmap, filters)
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-9)
        assert counter.matches(plan), (
            policy.name,
            counter.mismatch_report(plan),
        )
