"""Property-based tests (hypothesis) for the core invariants.

The central invariants of the library:

1. every plan a policy returns fits the budget it was given (Eq. 1/2);
2. a plan's streaming schedule moves exactly the traffic it declares;
3. traffic is never below the compulsory minimum (each element once);
4. the single-transfer policies achieve exactly that minimum;
5. the closed-form latency equals the step-level event simulation;
6. prefetching never increases latency for the same schedule;
7. baseline DRAM traffic is monotone in buffer capacity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import AcceleratorSpec
from repro.estimators import schedule_latency
from repro.nn import LayerKind, LayerSpec
from repro.policies import (
    FALLBACK_POLICY,
    NAMED_POLICIES,
    LayerSchedule,
    StepGroup,
)
from repro.scalesim import GemmWorkload, ScaleSimConfig, layer_traffic, lower_layer
from repro.sim.engine import Step, expand_schedule


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def layers(draw) -> LayerSpec:
    """Random but valid conv/dw/pw/fc layers of modest size."""
    kind = draw(st.sampled_from(
        [LayerKind.CONV, LayerKind.DEPTHWISE, LayerKind.POINTWISE, LayerKind.FC]
    ))
    if kind is LayerKind.FC:
        return LayerSpec(
            name="l",
            kind=kind,
            in_h=1,
            in_w=1,
            in_c=draw(st.integers(1, 512)),
            f_h=1,
            f_w=1,
            num_filters=draw(st.integers(1, 512)),
        )
    in_hw = draw(st.integers(8, 64))
    in_c = draw(st.integers(1, 64))
    if kind is LayerKind.POINTWISE:
        f = 1
        pad = 0
    else:
        f = draw(st.sampled_from([1, 3, 5]))
        pad = draw(st.integers(0, (f - 1) // 2))
    stride = draw(st.sampled_from([1, 2]))
    num_filters = 1 if kind is LayerKind.DEPTHWISE else draw(st.integers(1, 64))
    return LayerSpec(
        name="l",
        kind=kind,
        in_h=in_hw,
        in_w=in_hw,
        in_c=in_c,
        f_h=f,
        f_w=f,
        num_filters=num_filters,
        stride=stride,
        padding=pad,
    )


def _compulsory_min(layer: LayerSpec) -> int:
    from repro.policies.base import Policy

    return Policy.ifmap_pass_elems(layer) + layer.filter_elems + layer.ofmap_elems


step_groups = st.builds(
    StepGroup,
    count=st.integers(1, 50),
    ifmap=st.integers(0, 1000),
    filters=st.integers(0, 1000),
    macs=st.integers(0, 100_000),
    store=st.integers(0, 1000),
)

schedules = st.builds(
    LayerSchedule,
    groups=st.lists(step_groups, min_size=1, max_size=5).map(tuple),
    resident_ifmap=st.integers(0, 5000),
    resident_filters=st.integers(0, 5000),
)

budgets = st.integers(500, 1 << 24)
prefetches = st.booleans()

ALL_POLICIES = (*NAMED_POLICIES, FALLBACK_POLICY)


# ----------------------------------------------------------------------
# Policy invariants
# ----------------------------------------------------------------------

@settings(max_examples=150, deadline=None)
@given(layer=layers(), budget=budgets, prefetch=prefetches)
def test_plans_fit_their_budget(layer, budget, prefetch):
    for policy in ALL_POLICIES:
        plan = policy.plan(layer, budget, prefetch)
        if plan is not None:
            assert plan.memory_elems <= budget, policy.name


@settings(max_examples=150, deadline=None)
@given(layer=layers(), budget=budgets, prefetch=prefetches)
def test_schedule_equals_traffic(layer, budget, prefetch):
    for policy in ALL_POLICIES:
        plan = policy.plan(layer, budget, prefetch)
        if plan is None:
            continue
        s, t = plan.schedule, plan.traffic
        assert s.total_ifmap_load == t.ifmap_reads, policy.name
        assert s.total_filter_load == t.filter_reads, policy.name
        assert s.total_store == t.ofmap_writes + t.ofmap_spills, policy.name
        assert s.total_macs == layer.macs, policy.name


@settings(max_examples=150, deadline=None)
@given(layer=layers(), budget=budgets, prefetch=prefetches)
def test_traffic_at_least_compulsory(layer, budget, prefetch):
    minimum = _compulsory_min(layer)
    for policy in ALL_POLICIES:
        plan = policy.plan(layer, budget, prefetch)
        if plan is not None:
            assert plan.traffic.total >= minimum, policy.name


@settings(max_examples=150, deadline=None)
@given(layer=layers())
def test_single_transfer_policies_hit_minimum(layer):
    minimum = _compulsory_min(layer)
    unconstrained = 1 << 50
    for policy in NAMED_POLICIES[:4]:  # intra, p1, p2, p3
        plan = policy.plan(layer, unconstrained, False)
        assert plan is not None
        assert plan.traffic.total == minimum, policy.name


@settings(max_examples=100, deadline=None)
@given(layer=layers(), prefetch=prefetches)
def test_p4_p5_traffic_decreases_with_budget(layer, prefetch):
    """More room -> bigger filter blocks -> fewer ifmap re-streams."""
    for policy in NAMED_POLICIES[4:]:
        previous = None
        for budget in (2_000, 20_000, 200_000, 1 << 30):
            plan = policy.plan(layer, budget, prefetch)
            if plan is None:
                continue
            if previous is not None:
                assert plan.traffic.total <= previous, policy.name
            previous = plan.traffic.total


# ----------------------------------------------------------------------
# Latency model invariants
# ----------------------------------------------------------------------

SPEC = AcceleratorSpec()


def _simulate_schedule(schedule: LayerSchedule, prefetch: bool) -> float:
    """Reference step-by-step replay of the engine recurrences."""
    bw = SPEC.dram_bandwidth_elems_per_cycle
    rate = SPEC.macs_per_cycle
    load_t = schedule.resident_load / bw
    pe_t = load_t
    store_t = 0.0
    for step in expand_schedule(schedule):
        if prefetch:
            load_t += step.load / bw
            pe_t = max(pe_t, load_t) + step.macs / rate
            if step.store:
                store_t = max(store_t, pe_t) + step.store / bw
        else:
            t = max(load_t, pe_t, store_t) + step.load / bw
            load_t = t
            pe_t = t + step.macs / rate
            store_t = pe_t + step.store / bw
    total = max(load_t, pe_t, store_t)
    if prefetch:
        total = max(total, (schedule.total_load + schedule.total_store) / bw)
    return total


@settings(max_examples=200, deadline=None)
@given(schedule=schedules, prefetch=prefetches)
def test_latency_closed_form_matches_simulation(schedule, prefetch):
    closed = schedule_latency(schedule, SPEC, prefetch).total_cycles
    simulated = _simulate_schedule(schedule, prefetch)
    assert closed == pytest.approx(simulated, rel=1e-9, abs=1e-6)


@settings(max_examples=200, deadline=None)
@given(schedule=schedules)
def test_prefetch_never_slower(schedule):
    pf = schedule_latency(schedule, SPEC, True).total_cycles
    serial = schedule_latency(schedule, SPEC, False).total_cycles
    assert pf <= serial + 1e-6


@settings(max_examples=200, deadline=None)
@given(schedule=schedules, prefetch=prefetches)
def test_latency_bounded_below_by_both_resources(schedule, prefetch):
    lat = schedule_latency(schedule, SPEC, prefetch)
    assert lat.total_cycles >= lat.compute_cycles - 1e-6
    if prefetch:
        assert lat.total_cycles >= lat.dma_cycles - 1e-6


# ----------------------------------------------------------------------
# Baseline invariants
# ----------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(
    layer=layers(),
    small=st.integers(2, 64),
    grow=st.integers(1, 64),
)
def test_baseline_traffic_monotone_in_buffers(layer, small, grow):
    workload = lower_layer(layer)
    small_cfg = ScaleSimConfig(
        ifmap_buf_bytes=small * 1024, filter_buf_bytes=small * 1024
    )
    big_cfg = ScaleSimConfig(
        ifmap_buf_bytes=(small + grow) * 1024,
        filter_buf_bytes=(small + grow) * 1024,
    )
    assert layer_traffic(workload, big_cfg).total <= layer_traffic(workload, small_cfg).total


@settings(max_examples=100, deadline=None)
@given(layer=layers())
def test_baseline_traffic_at_least_unique_footprints(layer):
    workload = lower_layer(layer)
    cfg = ScaleSimConfig()
    t = layer_traffic(workload, cfg)
    assert t.ifmap_reads >= workload.ifmap_unique
    assert t.filter_reads >= workload.filter_unique
    assert t.ofmap_writes == workload.ofmap_unique
