"""The six named policies (§3.2): tile math, traffic, feasibility.

The ``small_conv`` fixture (8×8×4 in, 3×3, 6 filters, same padding) keeps
the arithmetic hand-checkable:

* padded ifmap 10×10×4 = 400, unpadded 256
* filters 3·3·4·6 = 216, per filter 36
* ofmap 8×8×6 = 384, MACs = 8·8·6·3·3·4 = 13824
* sliding window 3·10·4 = 120; covered rows = 3 + 7 = 10
"""

import pytest

from repro.policies import (
    FilterReuse,
    IfmapReuse,
    IntraLayerReuse,
    PartialIfmapReuse,
    PartialPerChannelReuse,
    PerChannelReuse,
    NAMED_POLICIES,
    policy_by_name,
)

BIG = 1 << 40


def _consistent(plan, layer):
    """Schedule totals must equal traffic totals and layer MACs."""
    s, t = plan.schedule, plan.traffic
    assert s.total_ifmap_load == t.ifmap_reads
    assert s.total_filter_load == t.filter_reads
    assert s.total_store == t.ofmap_writes + t.ofmap_spills
    assert s.total_macs == layer.macs


class TestIntra:
    def test_tiles(self, small_conv):
        plan = IntraLayerReuse().plan(small_conv, BIG, False)
        assert plan.tiles.ifmap == 256
        assert plan.tiles.filters == 216
        assert plan.tiles.ofmap == 384
        assert plan.memory_elems == 856

    def test_single_transfer_traffic(self, small_conv):
        plan = IntraLayerReuse().plan(small_conv, BIG, False)
        # ifmap traffic counts padding (10·10·4), everything moves once.
        assert plan.traffic.ifmap_reads == 400
        assert plan.traffic.filter_reads == 216
        assert plan.traffic.ofmap_writes == 384
        _consistent(plan, small_conv)

    def test_feasibility_boundary(self, small_conv):
        assert IntraLayerReuse().plan(small_conv, 856, False) is not None
        assert IntraLayerReuse().plan(small_conv, 855, False) is None

    def test_prefetch_doubles_requirement(self, small_conv):
        assert IntraLayerReuse().plan(small_conv, 1712, True) is not None
        assert IntraLayerReuse().plan(small_conv, 1711, True) is None

    def test_ofmap_resident_at_end(self, small_conv):
        assert IntraLayerReuse().plan(small_conv, BIG, False).ofmap_resident_at_end


class TestP1:
    def test_tiles(self, small_conv):
        plan = IfmapReuse().plan(small_conv, BIG, False)
        assert plan.tiles.ifmap == 120  # 3·10·4 window
        assert plan.tiles.filters == 216  # all filters resident
        assert plan.tiles.ofmap == 8 * 6  # one ofmap row, all channels

    def test_single_transfer(self, small_conv):
        plan = IfmapReuse().plan(small_conv, BIG, False)
        assert plan.traffic.ifmap_reads == 400
        assert plan.traffic.filter_reads == 216
        assert plan.traffic.ofmap_writes == 384
        _consistent(plan, small_conv)

    def test_row_steps(self, small_conv):
        plan = IfmapReuse().plan(small_conv, BIG, False)
        assert plan.schedule.num_steps == small_conv.out_h

    def test_resident_filters(self, small_conv):
        plan = IfmapReuse().plan(small_conv, BIG, False)
        assert plan.schedule.resident_filters == 216


class TestP2:
    def test_tiles(self, small_conv):
        plan = FilterReuse().plan(small_conv, BIG, False)
        assert plan.tiles.ifmap == 256  # whole unpadded ifmap (Table 3 match)
        assert plan.tiles.filters == 36  # one filter
        assert plan.tiles.ofmap == 64  # one ofmap channel

    def test_single_transfer(self, small_conv):
        plan = FilterReuse().plan(small_conv, BIG, False)
        assert plan.traffic.ifmap_reads == 400
        assert plan.traffic.filter_reads == 216
        assert plan.traffic.ofmap_writes == 384
        _consistent(plan, small_conv)

    def test_one_step_per_filter(self, small_conv):
        plan = FilterReuse().plan(small_conv, BIG, False)
        assert plan.schedule.num_steps == small_conv.num_filters

    def test_depthwise_steps_per_channel(self, dw_layer):
        plan = FilterReuse().plan(dw_layer, BIG, False)
        assert plan.schedule.num_steps == dw_layer.in_c
        assert plan.tiles.filters == 9  # one 2-D filter at a time
        _consistent(plan, dw_layer)


class TestP3:
    def test_tiles(self, small_conv):
        plan = PerChannelReuse().plan(small_conv, BIG, False)
        assert plan.tiles.ifmap == 30  # 3·10 single-channel window
        assert plan.tiles.filters == 3 * 3 * 6  # one channel of all filters
        assert plan.tiles.ofmap == 384  # whole ofmap accumulates

    def test_single_transfer(self, small_conv):
        plan = PerChannelReuse().plan(small_conv, BIG, False)
        assert plan.traffic.ifmap_reads == 400
        assert plan.traffic.filter_reads == 216
        assert plan.traffic.ofmap_writes == 384
        _consistent(plan, small_conv)

    def test_dense_ofmap_resident(self, small_conv, dw_layer):
        assert PerChannelReuse().plan(small_conv, BIG, False).ofmap_resident_at_end
        assert not PerChannelReuse().plan(dw_layer, BIG, False).ofmap_resident_at_end

    def test_depthwise_small_footprint(self, dw_layer):
        plan = PerChannelReuse().plan(dw_layer, BIG, False)
        # window 3·114 + filter 9 + one channel ofmap 56·56
        assert plan.tiles.total == 3 * 114 + 9 + 56 * 56
        _consistent(plan, dw_layer)


class TestP4:
    def test_block_choice_respects_budget(self, small_conv):
        # window 120 + n·(36 + 8) <= budget; n < 6.
        plan = PartialIfmapReuse().plan(small_conv, 120 + 2 * 44, False)
        assert plan.block_size == 2

    def test_block_capped_below_num_filters(self, small_conv):
        plan = PartialIfmapReuse().plan(small_conv, BIG, False)
        assert plan.block_size == small_conv.num_filters - 1

    def test_ifmap_reload_factor(self, small_conv):
        plan = PartialIfmapReuse().plan(small_conv, 120 + 2 * 44, False)
        # x = ceil(6/2) = 3 passes over the padded ifmap.
        assert plan.traffic.ifmap_reads == 3 * 400
        assert plan.traffic.filter_reads == 216
        assert plan.traffic.ofmap_writes == 384
        _consistent(plan, small_conv)

    def test_infeasible_when_window_does_not_fit(self, small_conv):
        assert PartialIfmapReuse().plan(small_conv, 100, False) is None

    def test_depthwise_single_pass(self, dw_layer):
        plan = PartialIfmapReuse().plan(dw_layer, 2_000, False)
        assert plan is not None
        # Channel blocking: the ifmap is never re-streamed (113 touched
        # rows x 113 touched columns at stride 2 with a 3x3 kernel).
        assert plan.traffic.ifmap_reads == dw_layer.in_c * 113 * 113
        assert plan.traffic.filter_reads == dw_layer.filter_elems
        _consistent(plan, dw_layer)

    def test_remainder_blocks_exact(self, small_conv):
        # n=4 -> blocks of 4 and 2; totals must still be exact.
        plan = PartialIfmapReuse().plan(small_conv, 120 + 4 * 44, False)
        assert plan.block_size == 4
        _consistent(plan, small_conv)


class TestP5:
    def test_tiles(self, small_conv):
        plan = PartialPerChannelReuse().plan(small_conv, BIG, False)
        n = plan.block_size
        assert plan.tiles.ifmap == 30
        assert plan.tiles.filters == 9 * n
        assert plan.tiles.ofmap == 64 * n

    def test_reload_factor(self, small_conv):
        # window 30 + n·(9+64): n=2 -> 176.
        plan = PartialPerChannelReuse().plan(small_conv, 176, False)
        assert plan.block_size == 2
        assert plan.traffic.ifmap_reads == 3 * 400  # ceil(6/2) passes
        _consistent(plan, small_conv)

    def test_smallest_footprint_of_named_policies(self, conv_layer):
        sizes = {}
        for policy in NAMED_POLICIES:
            plan = policy.plan(conv_layer, BIG, False)
            if plan is not None and plan.block_size in (None, 1):
                sizes[policy.name] = plan.tiles.total
        small = PartialPerChannelReuse().plan(conv_layer, 3 * 58 + 9 + 56 * 56, False)
        assert small is not None and small.block_size == 1

    def test_depthwise_matches_p4(self, dw_layer):
        p4 = PartialIfmapReuse().plan(dw_layer, 2_000, False)
        p5 = PartialPerChannelReuse().plan(dw_layer, 2_000, False)
        assert p5.traffic == p4.traffic
        assert p5.tiles == p4.tiles
        assert p5.policy_name == "p5"
        _consistent(p5, dw_layer)


class TestRegistry:
    def test_paper_order(self):
        assert [p.name for p in NAMED_POLICIES] == ["intra", "p1", "p2", "p3", "p4", "p5"]

    def test_lookup(self):
        assert policy_by_name("p2").name == "p2"
        assert policy_by_name("tiled").name == "tiled"
        with pytest.raises(KeyError):
            policy_by_name("p9")

    @pytest.mark.parametrize("policy", NAMED_POLICIES, ids=lambda p: p.name)
    def test_all_feasible_with_huge_budget(self, policy, conv_layer):
        assert policy.plan(conv_layer, BIG, False) is not None

    @pytest.mark.parametrize("policy", NAMED_POLICIES, ids=lambda p: p.name)
    def test_prefetch_never_cheaper_in_memory(self, policy, conv_layer):
        plain = policy.plan(conv_layer, BIG, False)
        pf = policy.plan(conv_layer, BIG, True)
        assert pf.memory_elems >= plain.memory_elems
