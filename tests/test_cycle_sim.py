"""Cycle-stepped systolic-array simulation vs the analytical fold model."""

import numpy as np
import pytest

from repro.scalesim import ScaleSimConfig, compute_cycles
from repro.scalesim.cycle_sim import simulate_fold, simulate_gemm
from repro.scalesim.topology import GemmWorkload

RNG = np.random.default_rng(7)


class TestSimulateFold:
    def test_full_fold_matches_matmul(self):
        a = RNG.standard_normal((16, 20))
        b = RNG.standard_normal((20, 16))
        fold = simulate_fold(a, b, 16, 16)
        np.testing.assert_allclose(fold.output, a @ b, rtol=1e-9)

    def test_full_fold_cycle_formula(self):
        """A full R×C fold costs exactly 2R + C + K − 2 cycles —
        the constant the analytical model asserts, derived here."""
        for k in (1, 5, 37):
            a = RNG.standard_normal((16, k))
            b = RNG.standard_normal((k, 16))
            fold = simulate_fold(a, b, 16, 16)
            assert fold.cycles == 2 * 16 + 16 + k - 2

    def test_partial_fold_matches_matmul(self):
        a = RNG.standard_normal((5, 9))
        b = RNG.standard_normal((9, 3))
        fold = simulate_fold(a, b, 16, 16)
        np.testing.assert_allclose(fold.output, a @ b, rtol=1e-9)

    def test_partial_fold_cheaper_than_analytical(self):
        """Partial blocks finish streaming early; the analytical model
        conservatively charges full-array skew."""
        a = RNG.standard_normal((4, 10))
        b = RNG.standard_normal((10, 4))
        fold = simulate_fold(a, b, 16, 16)
        assert fold.cycles == 10 + 4 + 4 - 2 + 4
        assert fold.cycles <= 2 * 16 + 16 + 10 - 2

    def test_mac_count_exact(self):
        a = RNG.standard_normal((7, 11))
        b = RNG.standard_normal((11, 5))
        fold = simulate_fold(a, b, 16, 16)
        assert fold.mac_count == 7 * 5 * 11

    def test_utilization_below_one(self):
        a = RNG.standard_normal((16, 64))
        b = RNG.standard_normal((64, 16))
        fold = simulate_fold(a, b, 16, 16)
        assert 0.5 < fold.utilization < 1.0

    def test_dimension_validation(self):
        with pytest.raises(ValueError, match="inner"):
            simulate_fold(np.zeros((2, 3)), np.zeros((4, 2)), 16, 16)
        with pytest.raises(ValueError, match="exceeds"):
            simulate_fold(np.zeros((32, 3)), np.zeros((3, 2)), 16, 16)


class TestSimulateGemm:
    def test_multi_fold_matches_matmul(self):
        a = RNG.standard_normal((37, 12))
        b = RNG.standard_normal((12, 21))
        result = simulate_gemm(a, b, 16, 16)
        np.testing.assert_allclose(result.output, a @ b, rtol=1e-9)
        assert result.folds == 3 * 2
        assert result.mac_count == 37 * 21 * 12

    def test_cycles_match_analytical_for_aligned_gemm(self):
        """When every fold is full, the cycle sim reproduces the
        analytical compute model exactly."""
        sr, sc, k = 32, 48, 25
        a = RNG.standard_normal((sr, k))
        b = RNG.standard_normal((k, sc))
        result = simulate_gemm(a, b, 16, 16)
        workload = GemmWorkload(
            name="g", sr=sr, sc=sc, k=k,
            ifmap_unique=1, filter_unique=1, ofmap_unique=1,
        )
        assert result.cycles == compute_cycles(workload, ScaleSimConfig())

    def test_cycles_never_exceed_analytical(self):
        sr, sc, k = 19, 37, 13  # ragged folds
        a = RNG.standard_normal((sr, k))
        b = RNG.standard_normal((k, sc))
        result = simulate_gemm(a, b, 16, 16)
        workload = GemmWorkload(
            name="g", sr=sr, sc=sc, k=k,
            ifmap_unique=1, filter_unique=1, ofmap_unique=1,
        )
        assert result.cycles <= compute_cycles(workload, ScaleSimConfig())

    def test_small_array(self):
        a = RNG.standard_normal((6, 4))
        b = RNG.standard_normal((4, 6))
        result = simulate_gemm(a, b, 2, 3)
        np.testing.assert_allclose(result.output, a @ b, rtol=1e-9)
