"""Policy framework primitives: tiles, traffic, schedules."""

import pytest

from repro.policies import (
    CandidatePlan,
    LayerSchedule,
    StepGroup,
    TileSizes,
    Traffic,
)
from repro.policies.base import Policy
from repro.policies.p4 import split_blocks


class TestTileSizes:
    def test_total(self):
        assert TileSizes(ifmap=10, filters=20, ofmap=5).total == 35

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TileSizes(ifmap=-1, filters=0, ofmap=0)


class TestTraffic:
    def test_totals(self):
        t = Traffic(ifmap_reads=10, filter_reads=20, ofmap_writes=5)
        assert t.reads == 30
        assert t.writes == 5
        assert t.total == 35

    def test_spills_count_both_ways(self):
        t = Traffic(ifmap_reads=0, filter_reads=0, ofmap_writes=5, ofmap_spills=3)
        assert t.reads == 3
        assert t.writes == 8
        assert t.total == 11

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Traffic(ifmap_reads=-1, filter_reads=0, ofmap_writes=0)


class TestStepGroup:
    def test_load_sums_tensors(self):
        g = StepGroup(count=2, ifmap=3, filters=4, macs=10, store=1)
        assert g.load == 7

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            StepGroup(count=0)

    def test_rejects_negative_quantities(self):
        with pytest.raises(ValueError):
            StepGroup(count=1, macs=-1)


class TestLayerSchedule:
    def test_totals(self):
        s = LayerSchedule(
            groups=(
                StepGroup(count=3, ifmap=2, filters=1, macs=10, store=4),
                StepGroup(count=1, store=6),
            ),
            resident_ifmap=5,
            resident_filters=7,
        )
        assert s.resident_load == 12
        assert s.total_ifmap_load == 5 + 3 * 2
        assert s.total_filter_load == 7 + 3 * 1
        assert s.total_load == s.total_ifmap_load + s.total_filter_load
        assert s.total_store == 3 * 4 + 6
        assert s.total_macs == 30
        assert s.num_steps == 4

    def test_rejects_negative_resident(self):
        with pytest.raises(ValueError):
            LayerSchedule(groups=(), resident_ifmap=-1)


class TestCandidatePlanMemory:
    def _plan(self, prefetch, small_conv):
        return CandidatePlan(
            policy_name="x",
            layer=small_conv,
            tiles=TileSizes(ifmap=100, filters=50, ofmap=25),
            traffic=Traffic(ifmap_reads=1, filter_reads=1, ofmap_writes=1),
            schedule=LayerSchedule(groups=(StepGroup(count=1, macs=1),)),
            prefetch=prefetch,
        )

    def test_eq1_memory(self, small_conv):
        assert self._plan(False, small_conv).memory_elems == 175

    def test_eq2_doubles_with_prefetch(self, small_conv):
        assert self._plan(True, small_conv).memory_elems == 350

    def test_label(self, small_conv):
        assert self._plan(False, small_conv).label == "x"
        assert self._plan(True, small_conv).label == "x+p"


class TestPolicyHelpers:
    def test_covered_rows_stride1(self, conv_layer):
        # f_h + (out_h-1)*s = 3 + 55 = 58 = padded height.
        assert Policy.covered_rows(conv_layer) == 58

    def test_covered_rows_capped_by_padded_height(self, dw_layer):
        # 3 + 55*2 = 113 < padded 114.
        assert Policy.covered_rows(dw_layer) == 113

    def test_covered_cols(self, conv_layer, dw_layer):
        assert Policy.covered_cols(conv_layer) == 58
        assert Policy.covered_cols(dw_layer) == 113  # stride 2 skips one

    def test_ifmap_pass_elems(self, conv_layer):
        assert Policy.ifmap_pass_elems(conv_layer) == 58 * 58 * 64

    def test_ifmap_pass_per_channel(self, conv_layer):
        assert Policy.ifmap_pass_elems_per_channel(conv_layer) == 58 * 58


class TestSplitBlocks:
    def test_exact(self):
        assert split_blocks(8, 4) == [(2, 4)]

    def test_remainder(self):
        assert split_blocks(10, 4) == [(2, 4), (1, 2)]

    def test_single(self):
        assert split_blocks(3, 5) == [(1, 3)]

    def test_covers_total(self):
        for total in (1, 7, 64, 1000):
            for block in (1, 3, 7, total):
                assert sum(c * s for c, s in split_blocks(total, block)) == total

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            split_blocks(0, 4)
        with pytest.raises(ValueError):
            split_blocks(4, 0)
