"""Property-based tests for the analyzer layer (planning invariants).

Complements ``test_properties.py`` (policy/latency invariants) with
randomized *models*: small random chains planned end to end, checking
the planner-level guarantees hold off the beaten path of the zoo.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyzer import (
    Objective,
    plan_heterogeneous,
    plan_weighted,
)
from repro.arch import AcceleratorSpec
from repro.nn import LayerKind, LayerSpec, make_model
from repro.sim import crosscheck_plan
from repro.sim.glb import layout_plan


@st.composite
def chain_models(draw):
    """Random sequential CNNs (2–5 conv/pw layers, consistent shapes)."""
    num_layers = draw(st.integers(2, 5))
    hw = draw(st.sampled_from([16, 24, 32]))
    channels = draw(st.integers(2, 16))
    layers = []
    pairs = []
    for i in range(num_layers):
        pointwise = draw(st.booleans())
        out_channels = draw(st.integers(2, 24))
        if pointwise:
            f, pad = 1, 0
        else:
            f, pad = 3, 1
        stride = draw(st.sampled_from([1, 2])) if hw >= 8 else 1
        layer = LayerSpec(
            name=f"l{i}",
            kind=LayerKind.POINTWISE if pointwise else LayerKind.CONV,
            in_h=hw,
            in_w=hw,
            in_c=channels,
            f_h=f,
            f_w=f,
            num_filters=out_channels,
            stride=stride,
            padding=pad,
        )
        layers.append(layer)
        if i < num_layers - 1:
            pairs.append(i)
        hw, channels = layer.out_h, layer.out_c
    return make_model("random-chain", layers, pairs)


glb_sizes = st.sampled_from([8 * 1024, 32 * 1024, 128 * 1024])


@settings(max_examples=40, deadline=None)
@given(model=chain_models(), glb=glb_sizes)
def test_random_chains_plan_and_crosscheck(model, glb):
    spec = AcceleratorSpec(glb_bytes=glb)
    plan = plan_heterogeneous(model, spec)
    assert plan.max_memory_bytes <= glb
    check, _ = crosscheck_plan(plan)
    assert check.traffic_matches
    assert check.latency_rel_error < 1e-5


@settings(max_examples=40, deadline=None)
@given(model=chain_models(), glb=glb_sizes)
def test_interlayer_never_hurts_random_chains(model, glb):
    spec = AcceleratorSpec(glb_bytes=glb)
    base = plan_heterogeneous(model, spec)
    for mode in ("opportunistic", "joint"):
        il = plan_heterogeneous(model, spec, interlayer=True, interlayer_mode=mode)
        assert il.total_accesses_bytes <= base.total_accesses_bytes
        assert il.max_memory_bytes <= glb


@settings(max_examples=30, deadline=None)
@given(model=chain_models(), glb=glb_sizes)
def test_interlayer_plans_lay_out(model, glb):
    spec = AcceleratorSpec(glb_bytes=glb)
    plan = plan_heterogeneous(model, spec, interlayer=True, interlayer_mode="joint")
    layouts = layout_plan(plan)  # must not raise AllocationError
    for layout in layouts:
        for region in layout.regions:
            assert 0 <= region.offset and region.end <= glb


@settings(max_examples=30, deadline=None)
@given(model=chain_models(), glb=glb_sizes)
def test_objective_ordering_random_chains(model, glb):
    spec = AcceleratorSpec(glb_bytes=glb)
    het_a = plan_heterogeneous(model, spec, Objective.ACCESSES)
    het_l = plan_heterogeneous(model, spec, Objective.LATENCY)
    assert het_a.total_accesses_bytes <= het_l.total_accesses_bytes
    assert het_l.total_latency_cycles <= het_a.total_latency_cycles


@settings(max_examples=25, deadline=None)
@given(
    model=chain_models(),
    glb=glb_sizes,
    alpha=st.floats(0.0, 1.0, allow_nan=False),
)
def test_weighted_plans_bounded_by_endpoints(model, glb, alpha):
    spec = AcceleratorSpec(glb_bytes=glb)
    het_a = plan_heterogeneous(model, spec, Objective.ACCESSES)
    het_l = plan_heterogeneous(model, spec, Objective.LATENCY)
    weighted = plan_weighted(model, spec, alpha)
    assert weighted.total_accesses_bytes >= het_a.total_accesses_bytes
    assert weighted.total_latency_cycles >= het_l.total_latency_cycles - 1e-6
