"""Scalar-vs-vectorized planner parity (the PR 8 parity oracle).

The vectorized grid planner must be *bit-identical* to the original scalar
implementation retained behind ``REPRO_SCALAR_PLANNER=1``: same winners,
same tie-breaks, same audit trails, same exported JSON bytes.  These tests
plan the zoo and hypothesis-fuzzed random chains under both paths and
compare the serialized artifacts, and pin the exact Python types of every
:class:`~repro.estimators.PolicyEvaluation` field so NumPy scalars can
never leak into plans (and from there into cache keys or JSON output).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyzer import Objective, plan_heterogeneous, plan_to_dict, select_policy
from repro.analyzer.algorithm1 import _reject_reason, _select_index
from repro.arch import AcceleratorSpec, kib
from repro.estimators import evaluate_layer
from repro.nn import LayerKind, LayerSpec, make_model
from repro.nn.zoo import PAPER_MODEL_NAMES, get_model
from repro.plancore import ENV_SCALAR_PLANNER, scalar_planner_enabled


@contextmanager
def scalar_mode():
    """Run the enclosed block on the scalar parity-oracle path."""
    previous = os.environ.get(ENV_SCALAR_PLANNER)
    os.environ[ENV_SCALAR_PLANNER] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_SCALAR_PLANNER, None)
        else:
            os.environ[ENV_SCALAR_PLANNER] = previous


def _plan_bytes(model, spec, objective):
    plan = plan_heterogeneous(model, spec, objective)
    exported = json.dumps(plan_to_dict(plan), sort_keys=True)
    trail = json.dumps(plan.explain().to_payload(), sort_keys=True)
    return exported, trail


def test_zoo_plans_byte_identical_scalar_vs_vectorized():
    """Full zoo: exported plans and explain() trails match byte for byte."""
    assert not scalar_planner_enabled()
    cases = [
        (name, glb_kb, Objective.ACCESSES)
        for name in PAPER_MODEL_NAMES
        for glb_kb in (64, 256)
    ] + [("ResNet18", 128, Objective.LATENCY)]
    for name, glb_kb, objective in cases:
        model = get_model(name)
        spec = AcceleratorSpec(glb_bytes=kib(glb_kb))
        vectorized = _plan_bytes(model, spec, objective)
        with scalar_mode():
            scalar = _plan_bytes(model, spec, objective)
        assert vectorized == scalar, f"{name} @ {glb_kb} kB ({objective})"


@st.composite
def chain_models(draw):
    """Random sequential CNNs (1–4 conv/pw/dw layers, consistent shapes)."""
    num_layers = draw(st.integers(1, 4))
    hw = draw(st.sampled_from([8, 16, 28, 33]))
    channels = draw(st.integers(2, 16))
    layers = []
    for i in range(num_layers):
        kind = draw(
            st.sampled_from([LayerKind.CONV, LayerKind.POINTWISE, LayerKind.DEPTHWISE])
        )
        if kind is LayerKind.POINTWISE:
            f, pad = 1, 0
        else:
            f, pad = draw(st.sampled_from([(3, 1), (5, 2)]))
        stride = draw(st.sampled_from([1, 2]))
        # Depth-wise layers are modeled as a single grouped filter.
        num_filters = 1 if kind is LayerKind.DEPTHWISE else draw(st.integers(2, 24))
        layer = LayerSpec(
            name=f"l{i}",
            kind=kind,
            in_h=hw,
            in_w=hw,
            in_c=channels,
            f_h=f,
            f_w=f,
            num_filters=num_filters,
            stride=stride,
            padding=pad,
        )
        layers.append(layer)
        hw, channels = layer.out_h, layer.out_c
    return make_model("fuzz-chain", layers)


@settings(max_examples=30, deadline=None)
@given(
    model=chain_models(),
    glb=st.sampled_from([kib(8), kib(32), kib(64), kib(256)]),
    width=st.sampled_from([8, 16]),
    objective=st.sampled_from([Objective.ACCESSES, Objective.LATENCY]),
)
def test_fuzzed_plans_byte_identical_scalar_vs_vectorized(
    model, glb, width, objective
):
    assert not scalar_planner_enabled()
    spec = AcceleratorSpec(glb_bytes=glb, data_width_bits=width)
    vectorized = _plan_bytes(model, spec, objective)
    with scalar_mode():
        scalar = _plan_bytes(model, spec, objective)
    assert vectorized == scalar


# ----------------------------------------------------------------------
# Satellite: explicitly stable tie-breaking
# ----------------------------------------------------------------------


def _twin_evaluations(conv_layer, spec64):
    """Two candidates with *identical* metrics but distinct labels."""
    evaluations = evaluate_layer(conv_layer, spec64, allow_prefetch=False)
    first = evaluations[0]
    twin = replace(first, plan=replace(first.plan, policy_name="twin"))
    assert twin.accesses_bytes == first.accesses_bytes
    assert twin.latency_cycles == first.latency_cycles
    assert twin.label != first.label
    return first, twin


def test_tie_break_keeps_earlier_candidate(conv_layer, spec64):
    """On exact key ties Algorithm 1 must keep the earlier-listed candidate,
    on both the scalar and the vectorized selection path."""
    first, twin = _twin_evaluations(conv_layer, spec64)
    for objective in (Objective.ACCESSES, Objective.LATENCY):
        assert select_policy([first, twin], objective) is first
        assert select_policy([twin, first], objective) is twin
        assert _select_index([first, twin], objective) == 0
        with scalar_mode():
            assert select_policy([first, twin], objective) is first
            assert select_policy([twin, first], objective) is twin
            assert _select_index([first, twin], objective) == 0


# ----------------------------------------------------------------------
# Satellite: truthful sub-cycle reject reasons
# ----------------------------------------------------------------------


def test_reject_reason_subcycle_delta_is_not_zero_cycles(conv_layer, spec64):
    first, _ = _twin_evaluations(conv_layer, spec64)
    slower = replace(
        first,
        plan=replace(first.plan, policy_name="slow"),
        latency=replace(
            first.latency, total_cycles=first.latency.total_cycles + 0.4
        ),
    )
    reason = _reject_reason(slower, first, Objective.ACCESSES)
    assert "<1 cycle slower" in reason
    assert "0 cycles slower" not in reason
    # Whole-cycle deltas keep the historical wording.
    much_slower = replace(
        slower,
        latency=replace(first.latency, total_cycles=first.latency.total_cycles + 7),
    )
    assert "7 cycles slower" in _reject_reason(much_slower, first, Objective.ACCESSES)


def test_audit_trail_records_subcycle_reason(conv_layer, spec64):
    first, _ = _twin_evaluations(conv_layer, spec64)
    slower = replace(
        first,
        plan=replace(first.plan, policy_name="slow"),
        latency=replace(
            first.latency, total_cycles=first.latency.total_cycles + 0.25
        ),
    )
    audit = []
    select_policy([first, slower], Objective.ACCESSES, audit=audit)
    rejected = [r for r in audit if not r.chosen]
    assert len(rejected) == 1
    assert "<1 cycle slower" in rejected[0].reason


# ----------------------------------------------------------------------
# Satellite: no NumPy scalar leakage into PolicyEvaluation
# ----------------------------------------------------------------------


def test_policy_evaluation_field_types_are_native(conv_layer, spec64):
    """Exact Python types: int64/float64 leakage would poison cached plans,
    cache keys and JSON exports."""
    assert not scalar_planner_enabled()
    evaluations = evaluate_layer(conv_layer, spec64, always_fallback=True)
    assert evaluations
    for ev in evaluations:
        assert type(ev.memory_bytes) is int, ev.label
        assert type(ev.accesses_bytes) is int, ev.label
        assert type(ev.read_bytes) is int, ev.label
        assert type(ev.write_bytes) is int, ev.label
        assert type(ev.latency.total_cycles) is float, ev.label
        assert type(ev.latency.compute_cycles) is float, ev.label
        assert type(ev.latency.dma_cycles) is float, ev.label


def test_plan_assignment_types_survive_json_round_trip(conv_layer, spec64):
    model = make_model("one", [conv_layer])
    plan = plan_heterogeneous(model, spec64)
    payload = plan_to_dict(plan)
    # json.dumps would coerce NumPy scalars silently on some versions and
    # crash on others; byte-compare an explicit round trip instead.
    assert json.loads(json.dumps(payload)) == payload
