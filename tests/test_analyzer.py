"""Algorithm 1, objectives and plan construction."""

import pytest

from repro.analyzer import (
    Objective,
    best_homogeneous,
    plan_heterogeneous,
    plan_homogeneous,
    select_policy,
)
from repro.arch import AcceleratorSpec, kib
from repro.estimators import evaluate_layer
from repro.nn.zoo import get_model


class TestObjective:
    def test_accesses_key_order(self):
        assert Objective.ACCESSES.key(10, 99) < Objective.ACCESSES.key(11, 1)

    def test_accesses_tiebreak_on_latency(self):
        assert Objective.ACCESSES.key(10, 5) < Objective.ACCESSES.key(10, 6)

    def test_latency_key_order(self):
        assert Objective.LATENCY.key(99, 10) < Objective.LATENCY.key(1, 11)

    def test_latency_tiebreak_on_accesses(self):
        assert Objective.LATENCY.key(5, 10) < Objective.LATENCY.key(6, 10)


class TestSelectPolicy:
    def test_picks_min_accesses(self, conv_layer, spec1m):
        evs = evaluate_layer(conv_layer, spec1m)
        best = select_policy(evs, Objective.ACCESSES)
        assert best.accesses_bytes == min(e.accesses_bytes for e in evs)

    def test_picks_min_latency(self, conv_layer, spec1m):
        evs = evaluate_layer(conv_layer, spec1m)
        best = select_policy(evs, Objective.LATENCY)
        assert best.latency_cycles == min(e.latency_cycles for e in evs)

    def test_accesses_ties_break_on_latency(self, conv_layer, spec1m):
        evs = evaluate_layer(conv_layer, spec1m)
        best = select_policy(evs, Objective.ACCESSES)
        ties = [e for e in evs if e.accesses_bytes == best.accesses_bytes]
        assert best.latency_cycles == min(e.latency_cycles for e in ties)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no feasible policy"):
            select_policy([], Objective.ACCESSES)


class TestHeterogeneousPlan:
    def test_one_assignment_per_layer(self, spec64):
        model = get_model("MobileNet")
        plan = plan_heterogeneous(model, spec64)
        assert len(plan.assignments) == len(model)
        assert plan.scheme == "het"

    def test_every_assignment_fits(self, spec64):
        plan = plan_heterogeneous(get_model("ResNet18"), spec64)
        assert all(a.memory_bytes <= spec64.glb_bytes for a in plan.assignments)

    def test_latency_objective_not_worse_on_latency(self, spec64):
        model = get_model("MobileNet")
        het_a = plan_heterogeneous(model, spec64, Objective.ACCESSES)
        het_l = plan_heterogeneous(model, spec64, Objective.LATENCY)
        assert het_l.total_latency_cycles <= het_a.total_latency_cycles
        assert het_l.total_accesses_bytes >= het_a.total_accesses_bytes

    def test_accesses_flat_across_glb_sizes(self):
        """The paper's Fig. 5 observation: Het accesses barely move."""
        model = get_model("MnasNet")
        totals = [
            plan_heterogeneous(model, AcceleratorSpec(glb_bytes=kib(g))).total_accesses_bytes
            for g in (64, 1024)
        ]
        assert totals[1] <= totals[0]
        assert totals[0] <= 1.10 * totals[1]

    def test_unknown_interlayer_mode(self, spec64):
        with pytest.raises(ValueError, match="interlayer_mode"):
            plan_heterogeneous(
                get_model("MobileNet"), spec64, interlayer=True, interlayer_mode="x"
            )

    def test_prefetch_disabled(self, spec64):
        plan = plan_heterogeneous(
            get_model("MobileNet"), spec64, allow_prefetch=False
        )
        assert plan.prefetch_coverage == 0.0


class TestHomogeneousPlan:
    def test_single_family(self, spec1m):
        plan = plan_homogeneous(get_model("MobileNet"), spec1m, "p1")
        assert plan.scheme == "hom(p1)"
        assert set(plan.policy_families_used) <= {"p1", "tiled"}

    def test_fallback_used_when_family_does_not_fit(self, spec64):
        # intra cannot fit most layers at 64 kB.
        plan = plan_homogeneous(get_model("ResNet18"), spec64, "intra")
        assert "tiled" in plan.policy_families_used

    def test_unknown_family(self, spec64):
        with pytest.raises(KeyError):
            plan_homogeneous(get_model("MobileNet"), spec64, "p99")

    def test_best_homogeneous_minimizes(self, spec64):
        model = get_model("MobileNet")
        best = best_homogeneous(model, spec64)
        for family in ("intra", "p1", "p2", "p3", "p4", "p5"):
            plan = plan_homogeneous(model, spec64, family)
            if plan is not None:
                assert best.total_accesses_bytes <= plan.total_accesses_bytes


class TestDominance:
    """Het considers every policy Hom can use, so it can never lose."""

    @pytest.mark.parametrize("glb_kb", [64, 256, 1024])
    @pytest.mark.parametrize("name", ["MobileNet", "ResNet18"])
    def test_het_not_worse_than_hom(self, name, glb_kb):
        spec = AcceleratorSpec(glb_bytes=kib(glb_kb))
        model = get_model(name)
        het = plan_heterogeneous(model, spec)
        hom = best_homogeneous(model, spec)
        assert het.total_accesses_bytes <= hom.total_accesses_bytes

    @pytest.mark.parametrize("name", ["MobileNet", "ResNet18"])
    def test_per_layer_optimality(self, name, spec64):
        """Each Het assignment is at least as good as any feasible policy."""
        model = get_model(name)
        plan = plan_heterogeneous(model, spec64)
        for assignment in plan.assignments:
            evs = evaluate_layer(assignment.layer, spec64)
            if not evs:
                continue
            assert assignment.accesses_bytes <= min(e.accesses_bytes for e in evs)
