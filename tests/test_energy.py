"""Energy cost model and energy experiment."""

import pytest

from repro.analyzer import plan_heterogeneous
from repro.arch import AcceleratorSpec, kib
from repro.energy import (
    DEFAULT_ENERGY_MODEL,
    EnergyBreakdown,
    EnergyModel,
    baseline_energy,
    plan_energy,
)
from repro.experiments import energy as energy_experiment
from repro.nn.zoo import get_model
from repro.scalesim import baseline_config, simulate


class TestEnergyModel:
    def test_default_ratio_in_paper_band(self):
        """Paper §2.3: off-chip costs ~10-100x a local computation."""
        assert 10.0 <= DEFAULT_ENERGY_MODEL.dram_sram_ratio <= 200.0

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            EnergyModel(dram_pj_per_byte=-1)

    def test_breakdown_totals(self):
        b = EnergyBreakdown(dram_pj=100, sram_pj=50, mac_pj=25)
        assert b.total_pj == 175
        assert b.total_uj == pytest.approx(175e-6)
        assert b.dram_share == pytest.approx(100 / 175)


class TestPlanEnergy:
    @pytest.fixture(scope="class")
    def plan(self):
        return plan_heterogeneous(
            get_model("MobileNet"), AcceleratorSpec(glb_bytes=kib(64))
        )

    def test_components_positive(self, plan):
        e = plan_energy(plan)
        assert e.dram_pj > 0 and e.sram_pj > 0 and e.mac_pj > 0

    def test_dram_energy_proportional_to_accesses(self, plan):
        e = plan_energy(plan)
        assert e.dram_pj == pytest.approx(
            plan.total_accesses_bytes * DEFAULT_ENERGY_MODEL.dram_pj_per_byte
        )

    def test_mac_energy_from_model_macs(self, plan):
        e = plan_energy(plan)
        assert e.mac_pj == pytest.approx(
            plan.model.total_macs * DEFAULT_ENERGY_MODEL.mac_pj
        )

    def test_custom_model_scales(self, plan):
        cheap_dram = EnergyModel(dram_pj_per_byte=16.0)
        assert plan_energy(plan, cheap_dram).dram_pj == pytest.approx(
            plan_energy(plan).dram_pj / 10
        )


class TestBaselineEnergy:
    def test_baseline_vs_plan(self):
        """Fewer accesses must mean less energy under any fixed model."""
        model = get_model("ResNet18")
        spec = AcceleratorSpec(glb_bytes=kib(64))
        plan = plan_heterogeneous(model, spec)
        base = simulate(model, baseline_config(kib(64), 0.25))
        assert plan_energy(plan).total_pj < baseline_energy(base).total_pj


class TestEnergyExperiment:
    def test_reductions_positive_at_64k(self):
        cells = energy_experiment.run(models=("ResNet18",), glb_sizes_kb=(64,))
        assert cells[0].reduction_pct > 20.0

    def test_table_renders(self):
        cells = energy_experiment.run(models=("MobileNet",), glb_sizes_kb=(64, 1024))
        text = energy_experiment.to_table(cells).render()
        assert "µJ" in text and "MobileNet" in text
