"""Two-resource latency model: hand-checked cases and overlap properties.

Reference rates: the default spec moves 16 elements/cycle and computes 256
MACs/cycle.
"""

import pytest

from repro.arch import AcceleratorSpec
from repro.estimators import schedule_latency
from repro.policies import LayerSchedule, StepGroup

SPEC = AcceleratorSpec()  # bw=16 elems/cyc, rate=256 MACs/cyc


def _schedule(groups, resident_ifmap=0, resident_filters=0):
    return LayerSchedule(
        groups=tuple(groups),
        resident_ifmap=resident_ifmap,
        resident_filters=resident_filters,
    )


class TestSerialLatency:
    def test_single_step(self):
        s = _schedule([StepGroup(count=1, ifmap=160, macs=2560, store=16)])
        lat = schedule_latency(s, SPEC, prefetch=False)
        # 160/16 + 2560/256 + 16/16 = 10 + 10 + 1.
        assert lat.total_cycles == pytest.approx(21.0)

    def test_resident_then_compute(self):
        s = _schedule([StepGroup(count=1, macs=2560)], resident_filters=320)
        lat = schedule_latency(s, SPEC, prefetch=False)
        assert lat.total_cycles == pytest.approx(20 + 10)

    def test_steps_accumulate(self):
        s = _schedule([StepGroup(count=10, ifmap=160, macs=2560, store=16)])
        lat = schedule_latency(s, SPEC, prefetch=False)
        assert lat.total_cycles == pytest.approx(10 * 21.0)

    def test_breakdown_totals(self):
        s = _schedule([StepGroup(count=4, ifmap=32, filters=32, macs=512, store=16)])
        lat = schedule_latency(s, SPEC, prefetch=False)
        assert lat.compute_cycles == pytest.approx(4 * 2.0)
        assert lat.dma_cycles == pytest.approx(4 * (64 + 16) / 16)


class TestPrefetchLatency:
    def test_compute_bound_steady_state(self):
        # Per step: dma = (160+16)/16 = 11 < compute = 20.
        s = _schedule([StepGroup(count=100, ifmap=160, macs=5120, store=16)])
        lat = schedule_latency(s, SPEC, prefetch=True)
        # fill(10) + 100·20 + final store tail(1)
        assert lat.total_cycles == pytest.approx(10 + 100 * 20 + 1)

    def test_dma_bound_steady_state(self):
        # Per step: dma = (320+160)/16 = 30 > compute = 10.
        s = _schedule([StepGroup(count=100, ifmap=320, macs=2560, store=160)])
        lat = schedule_latency(s, SPEC, prefetch=True)
        # The port-work conservation bound dominates: 100·30 cycles.
        assert lat.total_cycles == pytest.approx(100 * 30)

    def test_prefetch_never_slower_than_serial(self):
        cases = [
            [StepGroup(count=5, ifmap=100, macs=1000, store=50)],
            [StepGroup(count=3, filters=10, macs=5000), StepGroup(count=2, store=400)],
            [StepGroup(count=1, ifmap=1, macs=1)],
        ]
        for groups in cases:
            s = _schedule(groups)
            pf = schedule_latency(s, SPEC, prefetch=True).total_cycles
            serial = schedule_latency(s, SPEC, prefetch=False).total_cycles
            assert pf <= serial + 1e-9

    def test_latency_lower_bounds(self):
        s = _schedule([StepGroup(count=7, ifmap=128, macs=4096, store=64)])
        for prefetch in (False, True):
            lat = schedule_latency(s, SPEC, prefetch)
            assert lat.total_cycles >= lat.compute_cycles - 1e-9
            assert lat.total_cycles >= lat.dma_cycles - 1e-9

    def test_group_collapse_matches_iteration(self):
        """The O(groups) closed form must equal naive step iteration."""
        group = StepGroup(count=57, ifmap=37, filters=11, macs=900, store=23)
        collapsed = schedule_latency(_schedule([group]), SPEC, prefetch=True)
        singles = [StepGroup(count=1, ifmap=37, filters=11, macs=900, store=23)] * 57
        iterated = schedule_latency(_schedule(singles), SPEC, prefetch=True)
        assert collapsed.total_cycles == pytest.approx(iterated.total_cycles)

    def test_group_collapse_matches_iteration_serial(self):
        group = StepGroup(count=33, ifmap=5, macs=12000, store=3)
        collapsed = schedule_latency(_schedule([group]), SPEC, prefetch=False)
        singles = [StepGroup(count=1, ifmap=5, macs=12000, store=3)] * 33
        iterated = schedule_latency(_schedule(singles), SPEC, prefetch=False)
        assert collapsed.total_cycles == pytest.approx(iterated.total_cycles)

    def test_small_counts_no_extrapolation(self):
        for count in (1, 2, 3):
            s = _schedule([StepGroup(count=count, ifmap=16, macs=256, store=16)])
            lat = schedule_latency(s, SPEC, prefetch=True)
            assert lat.total_cycles > 0

    def test_resident_blocks_first_compute(self):
        s = _schedule([StepGroup(count=1, macs=256)], resident_ifmap=1600)
        lat = schedule_latency(s, SPEC, prefetch=True)
        assert lat.total_cycles == pytest.approx(100 + 1)


class TestLatencyEdgeCases:
    def test_compute_only_schedule_moves_no_bytes(self):
        # Zero-byte transfers: the DMA chains must stay untouched.
        s = _schedule([StepGroup(count=8, macs=2560)])
        for prefetch in (False, True):
            lat = schedule_latency(s, SPEC, prefetch)
            assert lat.dma_cycles == 0.0
            assert lat.total_cycles == pytest.approx(8 * 10.0)

    def test_transfer_only_schedule_computes_nothing(self):
        s = _schedule([StepGroup(count=4, ifmap=160, store=160)])
        for prefetch in (False, True):
            lat = schedule_latency(s, SPEC, prefetch)
            assert lat.compute_cycles == 0.0
            assert lat.total_cycles == pytest.approx(4 * 20.0)

    def test_compute_memory_bound_crossover(self):
        # Per step the port moves (304+16)/16 = 20 cycles of data; sweep the
        # compute time across that point.
        def total(macs):
            s = _schedule([StepGroup(count=50, ifmap=304, macs=macs, store=16)])
            return schedule_latency(s, SPEC, prefetch=True).total_cycles

        # Memory-bound (compute 10 < dma 20): port-work conservation rules.
        assert total(2560) == pytest.approx(50 * 20)
        # Compute-bound (compute 30 > dma 20): load fill + compute + store tail.
        assert total(7680) == pytest.approx(304 / 16 + 50 * 30 + 1)
        # At the crossover the pipelined chain (fill + compute + tail) is the
        # binding one, and the model is continuous in between.
        assert total(5120) == pytest.approx(304 / 16 + 50 * 20 + 1)
        assert total(2560) <= total(5120) <= total(7680)

    def test_prefetch_overlap_accounting(self):
        # Per step: load 20, compute 10, store 20 cycles.
        s = _schedule([StepGroup(count=40, ifmap=160, filters=160, macs=2560, store=320)])
        serial = schedule_latency(s, SPEC, prefetch=False)
        pf = schedule_latency(s, SPEC, prefetch=True)
        # Serial: everything adds; prefetch: the port (40 cyc/step) binds and
        # compute hides entirely inside it.
        assert serial.total_cycles == pytest.approx(40 * 50)
        assert pf.total_cycles == pytest.approx(40 * 40)
        # Overlap changes the critical path, never the per-resource busy time.
        assert pf.dma_cycles == pytest.approx(serial.dma_cycles)
        assert pf.compute_cycles == pytest.approx(serial.compute_cycles)
        assert pf.total_cycles >= pf.dma_cycles - 1e-9
