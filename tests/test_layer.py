"""LayerSpec: Table 1 hyperparameters and derived quantities."""

import pytest

from repro.nn import LayerKind, LayerSpec, conv_out_extent


class TestConvOutExtent:
    def test_basic(self):
        assert conv_out_extent(224, 7, 2, 3) == 112
        assert conv_out_extent(56, 3, 1, 1) == 56
        assert conv_out_extent(112, 3, 2, 1) == 56

    def test_no_padding(self):
        assert conv_out_extent(8, 3, 1, 0) == 6

    def test_empty_output_rejected(self):
        with pytest.raises(ValueError):
            conv_out_extent(2, 5, 1, 0)


class TestShapes:
    def test_conv_output_shape(self, conv_layer):
        assert (conv_layer.out_h, conv_layer.out_w, conv_layer.out_c) == (56, 56, 64)

    def test_strided_output_shape(self, dw_layer):
        assert (dw_layer.out_h, dw_layer.out_w) == (56, 56)

    def test_depthwise_out_channels_follow_input(self, dw_layer):
        assert dw_layer.out_c == dw_layer.in_c == 64

    def test_padded_extents(self, conv_layer):
        assert conv_layer.padded_h == 58
        assert conv_layer.padded_w == 58

    def test_fc_shape(self, fc_layer):
        assert (fc_layer.out_h, fc_layer.out_w, fc_layer.out_c) == (1, 1, 1000)


class TestElementCounts:
    def test_conv_footprints(self, conv_layer):
        assert conv_layer.ifmap_elems == 56 * 56 * 64
        assert conv_layer.ifmap_padded_elems == 58 * 58 * 64
        assert conv_layer.filter_elems == 3 * 3 * 64 * 64
        assert conv_layer.ofmap_elems == 56 * 56 * 64
        assert conv_layer.filter_elems_per_filter == 3 * 3 * 64

    def test_depthwise_filter_is_one_grouped_filter(self, dw_layer):
        assert dw_layer.filter_elems == 3 * 3 * 64
        assert dw_layer.filter_elems_per_filter == 3 * 3 * 64

    def test_total_elems(self, small_conv):
        assert small_conv.total_elems == (
            small_conv.ifmap_elems + small_conv.filter_elems + small_conv.ofmap_elems
        )

    def test_conv_macs(self, conv_layer):
        assert conv_layer.macs == 56 * 56 * 64 * 3 * 3 * 64

    def test_depthwise_macs(self, dw_layer):
        assert dw_layer.macs == 56 * 56 * 64 * 3 * 3

    def test_fc_macs(self, fc_layer):
        assert fc_layer.macs == 512 * 1000


class TestValidation:
    def _layer(self, **overrides):
        base = dict(
            name="l",
            kind=LayerKind.CONV,
            in_h=8,
            in_w=8,
            in_c=4,
            f_h=3,
            f_w=3,
            num_filters=2,
            stride=1,
            padding=0,
        )
        base.update(overrides)
        return LayerSpec(**base)

    def test_rejects_nonpositive_dims(self):
        for field in ("in_h", "in_w", "in_c", "f_h", "f_w", "num_filters", "stride"):
            with pytest.raises(ValueError):
                self._layer(**{field: 0})

    def test_rejects_negative_padding(self):
        with pytest.raises(ValueError):
            self._layer(padding=-1)

    def test_rejects_filter_larger_than_input(self):
        with pytest.raises(ValueError):
            self._layer(f_h=11, f_w=11)

    def test_padding_can_make_filter_fit(self):
        layer = self._layer(in_h=3, in_w=3, f_h=5, f_w=5, padding=1)
        assert layer.out_h == 1

    def test_depthwise_requires_single_filter(self):
        with pytest.raises(ValueError):
            self._layer(kind=LayerKind.DEPTHWISE, num_filters=4)

    def test_pointwise_requires_1x1(self):
        with pytest.raises(ValueError):
            self._layer(kind=LayerKind.POINTWISE)

    def test_fc_requires_1x1_input(self):
        with pytest.raises(ValueError):
            self._layer(kind=LayerKind.FC, f_h=1, f_w=1)

    def test_projection_requires_1x1(self):
        with pytest.raises(ValueError):
            self._layer(kind=LayerKind.PROJECTION, f_h=3, f_w=3)


class TestLayerKind:
    def test_table2_codes(self):
        assert LayerKind.CONV.value == "CV"
        assert LayerKind.DEPTHWISE.value == "DW"
        assert LayerKind.POINTWISE.value == "PW"
        assert LayerKind.FC.value == "FC"
        assert LayerKind.PROJECTION.value == "PL"

    def test_is_depthwise(self):
        assert LayerKind.DEPTHWISE.is_depthwise
        assert not LayerKind.CONV.is_depthwise
