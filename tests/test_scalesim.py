"""SCALE-Sim-style baseline: config, lowering, timing, DRAM model."""

import pytest

from repro.arch import kib
from repro.nn import LayerKind, LayerSpec
from repro.nn.zoo import get_model
from repro.scalesim import (
    Dataflow,
    GemmWorkload,
    ScaleSimConfig,
    baseline_config,
    baseline_configs,
    compute_cycles,
    layer_traffic,
    lower_layer,
    lower_model,
    model_to_topology_csv,
    save_topology,
    simulate,
    utilization,
)


class TestConfig:
    def test_double_buffering_halves_capacity(self):
        cfg = ScaleSimConfig(ifmap_buf_bytes=kib(30))
        assert cfg.ifmap_working_elems == kib(15)

    def test_no_double_buffering(self):
        cfg = ScaleSimConfig(double_buffered=False, ifmap_buf_bytes=kib(30))
        assert cfg.ifmap_working_elems == kib(30)

    def test_working_elems_scale_with_width(self):
        cfg = ScaleSimConfig(ifmap_buf_bytes=kib(32), data_width_bits=32)
        assert cfg.ifmap_working_elems == kib(32) // 2 // 4

    def test_total_sram(self):
        cfg = ScaleSimConfig(
            ifmap_buf_bytes=10, filter_buf_bytes=20, ofmap_buf_bytes=5
        )
        assert cfg.total_sram_bytes == 35

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"array_rows": 0},
            {"ifmap_buf_bytes": 0},
            {"data_width_bits": 7},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ScaleSimConfig(**kwargs)


class TestPresets:
    def test_partition_shares(self):
        cfg = baseline_config(kib(64), 0.25)
        rest = kib(64) - kib(4)
        assert cfg.ofmap_buf_bytes == kib(4)
        assert cfg.ifmap_buf_bytes == int(rest * 0.25)
        assert cfg.ifmap_buf_bytes + cfg.filter_buf_bytes == rest

    def test_three_paper_partitions(self):
        configs = baseline_configs(kib(128))
        assert set(configs) == {"sa_25_75", "sa_50_50", "sa_75_25"}
        for cfg in configs.values():
            assert cfg.total_sram_bytes == kib(128)

    def test_rejects_bad_share(self):
        with pytest.raises(ValueError):
            baseline_config(kib(64), 1.5)

    def test_rejects_tiny_total(self):
        with pytest.raises(ValueError):
            baseline_config(kib(4), 0.5)


class TestLowering:
    def test_dense_conv(self, conv_layer):
        w = lower_layer(conv_layer)
        assert w.sr == 56 * 56
        assert w.sc == 64
        assert w.k == 3 * 3 * 64
        assert w.ifmap_unique == conv_layer.ifmap_elems
        assert not w.channel_private
        assert w.macs == conv_layer.macs

    def test_depthwise(self, dw_layer):
        w = lower_layer(dw_layer)
        assert w.sc == dw_layer.in_c
        assert w.k == 9
        assert w.channel_private
        assert w.macs == dw_layer.macs

    def test_fc(self, fc_layer):
        w = lower_layer(fc_layer)
        assert (w.sr, w.sc, w.k) == (1, 1000, 512)

    def test_lower_model(self):
        model = get_model("MobileNet")
        workloads = lower_model(model)
        assert len(workloads) == len(model)
        assert workloads[0].name == model[0].name


class TestTopologyCsv:
    def test_header_and_rows(self):
        csv = model_to_topology_csv(get_model("ResNet18"))
        lines = csv.strip().split("\n")
        assert lines[0].startswith("Layer name, IFMAP Height")
        assert len(lines) == 1 + 21
        assert lines[1].startswith("conv1, 224, 224, 7, 7, 3, 64, 2,")

    def test_save(self, tmp_path):
        path = tmp_path / "topo.csv"
        save_topology(get_model("MobileNet"), path)
        assert path.read_text().count("\n") == 29


class TestComputeCycles:
    def _w(self, sr=64, sc=32, k=100):
        return GemmWorkload(
            name="w", sr=sr, sc=sc, k=k, ifmap_unique=1, filter_unique=1, ofmap_unique=1
        )

    def test_os_fold_formula(self):
        cfg = ScaleSimConfig()
        w = self._w(sr=32, sc=32, k=100)
        # folds = 2·2, per fold = 2·16 + 16 + 100 - 2 = 146.
        assert compute_cycles(w, cfg) == 4 * 146

    def test_os_partial_folds_round_up(self):
        cfg = ScaleSimConfig()
        assert compute_cycles(self._w(sr=17, sc=1, k=10), cfg) == 2 * (
            2 * 16 + 16 + 10 - 2
        )

    def test_ws_and_is_run(self):
        w = self._w()
        for df in (Dataflow.WS, Dataflow.IS):
            cfg = ScaleSimConfig(dataflow=df)
            assert compute_cycles(w, cfg) > 0

    def test_utilization_bounded(self):
        cfg = ScaleSimConfig()
        for sr, sc, k in ((16, 16, 1000), (1, 1, 1), (100, 3, 7)):
            u = utilization(self._w(sr, sc, k), cfg)
            assert 0.0 < u <= 1.0

    def test_utilization_high_for_aligned_large_k(self):
        cfg = ScaleSimConfig()
        u = utilization(self._w(sr=160, sc=160, k=10000), cfg)
        assert u > 0.9


class TestLayerTraffic:
    def _w(self, ifmap=10_000, filt=50_000, sr=1024, sc=64, k=576):
        return GemmWorkload(
            name="w",
            sr=sr,
            sc=sc,
            k=k,
            ifmap_unique=ifmap,
            filter_unique=filt,
            ofmap_unique=sr * sc,
        )

    def _cfg(self, bi_kb=30, bf_kb=30):
        return ScaleSimConfig(
            ifmap_buf_bytes=kib(bi_kb), filter_buf_bytes=kib(bf_kb)
        )

    def test_everything_resident_moves_once(self):
        w = self._w(ifmap=1000, filt=1000)
        t = layer_traffic(w, self._cfg())
        assert t.ifmap_reads == 1000
        assert t.filter_reads == 1000
        assert t.regime == "resident/resident"

    def test_pinned_filters_restream_per_row_fold(self):
        w = self._w(ifmap=1000, filt=50_000, sr=1024)
        cfg = self._cfg(bf_kb=16)  # working = 8k elements
        t = layer_traffic(w, cfg)
        row_folds = -(-1024 // 16)
        pinned = cfg.filter_working_elems
        assert t.filter_reads == pinned + (50_000 - pinned) * row_folds

    def test_pinned_ifmap_restreams_per_col_fold(self):
        w = self._w(ifmap=100_000, filt=1000, sc=64)
        cfg = self._cfg(bi_kb=16)
        t = layer_traffic(w, cfg)
        col_folds = 4
        pinned = cfg.ifmap_working_elems
        assert t.ifmap_reads == pinned + (100_000 - pinned) * col_folds

    def test_ofmap_written_once(self):
        w = self._w()
        assert layer_traffic(w, self._cfg()).ofmap_writes == w.ofmap_unique

    def test_channel_private_always_minimum(self):
        w = GemmWorkload(
            name="dw",
            sr=3136,
            sc=64,
            k=9,
            ifmap_unique=802816,
            filter_unique=576,
            ofmap_unique=200704,
            channel_private=True,
        )
        t = layer_traffic(w, self._cfg(bi_kb=8, bf_kb=8))
        assert t.total == 802816 + 576 + 200704

    def test_monotone_in_buffer_size(self):
        w = self._w(ifmap=200_000, filt=200_000)
        last = None
        for size_kb in (8, 16, 32, 64, 128, 256, 512):
            t = layer_traffic(w, self._cfg(bi_kb=size_kb, bf_kb=size_kb))
            if last is not None:
                assert t.total <= last
            last = t.total


class TestSimulate:
    def test_totals(self):
        model = get_model("MobileNet")
        result = simulate(model, baseline_config(kib(64), 0.5))
        assert len(result.layers) == len(model)
        assert result.total_cycles == sum(l.compute_cycles for l in result.layers)
        assert result.total_traffic_bytes == result.total_traffic_elems
        assert result.total_read_bytes + result.total_write_bytes == (
            result.total_traffic_bytes
        )

    def test_latency_independent_of_partition(self):
        """Zero-stall baseline: compute cycles ignore buffer sizes."""
        model = get_model("ResNet18")
        cycles = {
            label: simulate(model, cfg).total_cycles
            for label, cfg in baseline_configs(kib(64)).items()
        }
        assert len(set(cycles.values())) == 1

    def test_traffic_depends_on_partition(self):
        model = get_model("ResNet18")
        traffic = {
            label: simulate(model, cfg).total_traffic_bytes
            for label, cfg in baseline_configs(kib(64)).items()
        }
        assert len(set(traffic.values())) > 1

    def test_mean_utilization_bounded(self):
        result = simulate(get_model("MobileNet"), baseline_config(kib(64), 0.5))
        assert 0.0 < result.mean_utilization <= 1.0

    def test_average_bandwidth_positive(self):
        result = simulate(get_model("MobileNet"), baseline_config(kib(64), 0.5))
        assert result.average_dram_bandwidth_elems_per_cycle > 0
