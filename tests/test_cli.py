"""Command-line interface."""

import json

import pytest

from repro.cli import main
from repro.nn import save_model
from repro.nn.zoo import get_model


class TestModelsAndInspect:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("ResNet18", "MobileNet", "EfficientNetB0"):
            assert name in out

    def test_inspect_zoo_model(self, capsys):
        assert main(["inspect", "ResNet18"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "224x224x3" in out

    def test_inspect_json_model(self, capsys, tmp_path):
        path = tmp_path / "m.json"
        save_model(get_model("MobileNet"), path)
        assert main(["inspect", str(path)]) == 0
        assert "dw1" in capsys.readouterr().out

    def test_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["inspect", "NotAModel"])


class TestPlan:
    def test_plan_summary(self, capsys):
        assert main(["plan", "MobileNet", "--glb", "64"]) == 0
        out = capsys.readouterr().out
        assert "totals:" in out
        assert "prefetch coverage" in out

    def test_plan_latency_objective(self, capsys):
        assert main(["plan", "MobileNet", "--objective", "latency"]) == 0

    def test_plan_interlayer_flags_column(self, capsys):
        assert main(["plan", "MnasNet", "--glb", "1024", "--interlayer"]) == 0
        out = capsys.readouterr().out
        assert " d" in out or "rd" in out  # donation markers

    def test_plan_export(self, capsys, tmp_path):
        out_file = tmp_path / "plan.json"
        assert main(["plan", "MobileNet", "--export", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert data["model"] == "MobileNet"

    def test_plan_hom_scheme(self, capsys):
        assert main(["plan", "MobileNet", "--scheme", "hom(p1)"]) == 0
        out = capsys.readouterr().out
        assert "hom(p1)" in out


class TestBaselineCompareSweep:
    def test_baseline(self, capsys):
        assert main(["baseline", "MobileNet", "--glb", "64"]) == 0
        out = capsys.readouterr().out
        assert "sa_25_75" in out and "sa_75_25" in out

    def test_compare(self, capsys):
        assert main(["compare", "MobileNet", "--glb", "64"]) == 0
        out = capsys.readouterr().out
        assert "access reduction vs best baseline" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "MobileNet", "--glb-list", "64,128"]) == 0
        out = capsys.readouterr().out
        assert "65536" in out and "131072" in out

    def test_experiments_subcommand(self, capsys, tmp_path):
        assert main(["experiments", "table2", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "table2.csv").exists()
        assert "Table 2" in capsys.readouterr().out

    def test_experiments_jobs_and_bench(self, capsys, tmp_path):
        bench = tmp_path / "bench.json"
        assert main(
            ["experiments", "table2", "--jobs", "2", "--bench", str(bench)]
        ) == 0
        out = capsys.readouterr().out
        assert "Experiment engine summary (jobs=2)" in out
        assert json.loads(bench.read_text())["jobs"] == 2

    def test_experiments_trace_out_roundtrip(self, capsys, tmp_path, monkeypatch):
        from repro.report.diagnostics import validate_telemetry_payload

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        trace = tmp_path / "trace.json"
        assert main(["experiments", "table2", "--trace-out", str(trace), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "Run metrics" in out
        payload = json.loads(trace.read_text())
        assert validate_telemetry_payload(payload) == []
        assert any(e["name"] == "artifact" for e in payload["traceEvents"])

    def test_experiments_unknown_artifact_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["experiments", "fig99"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "fig99" in err and "table2" in err


class TestEvaluate:
    def test_evaluate_layer(self, capsys):
        assert main(["evaluate", "ResNet18", "conv2_1a", "--glb", "64"]) == 0
        out = capsys.readouterr().out
        assert "policy candidates" in out
        assert "p1" in out and "tiled" in out

    def test_evaluate_unknown_layer(self):
        with pytest.raises(KeyError):
            main(["evaluate", "ResNet18", "not_a_layer"])


class TestExplain:
    def test_explain_table_case_insensitive(self, capsys):
        assert main(["explain", "resnet18", "--glb", "64"]) == 0
        out = capsys.readouterr().out
        assert "decision audit" in out
        assert "* " in out  # every layer marks its chosen candidate
        assert "rejected" in out  # and at least one losing candidate
        assert "candidates considered" in out

    def test_explain_json_payload(self, capsys):
        assert main(["explain", "MobileNet", "--glb", "64", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheme"] == "het"
        assert payload["layers"]
        for layer in payload["layers"]:
            statuses = [c["status"] for c in layer["candidates"]]
            assert statuses.count("chosen") == 1
            rejected = [c for c in layer["candidates"] if c["status"] != "chosen"]
            assert all(c["reason"] for c in rejected)

    def test_explain_layer_filter(self, capsys):
        assert main(["explain", "ResNet18", "--glb", "64", "--layer", "conv1"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "conv2_1a" not in out

    def test_explain_unknown_model_exits_2(self, capsys):
        assert main(["explain", "NotAModel"]) == 2
        err = capsys.readouterr().err
        assert "NotAModel" in err and "ResNet18" in err  # lists available ids

    def test_explain_unknown_layer_exits_2(self, capsys):
        assert main(["explain", "ResNet18", "--layer", "not_a_layer"]) == 2
        assert "not_a_layer" in capsys.readouterr().err


class TestExtensionCommands:
    def test_layout(self, capsys):
        assert main(["layout", "MobileNet", "--glb", "64"]) == 0
        out = capsys.readouterr().out
        assert "address map" in out and "ifmap" in out

    def test_trace(self, capsys, tmp_path):
        out_file = tmp_path / "trace.csv"
        assert main(["trace", "ResNet18", "conv2_1a", str(out_file), "--glb", "1024"]) == 0
        assert out_file.exists()
        assert "DRAM transactions" in capsys.readouterr().out

    def test_bounds(self, capsys):
        assert main(["bounds", "ResNet18", "--glb", "64"]) == 0
        assert "lower bound" in capsys.readouterr().out

    def test_pareto(self, capsys):
        assert main(["pareto", "MobileNet", "--glb", "64", "--points", "3"]) == 0
        assert "Pareto frontier" in capsys.readouterr().out
