"""LRU plan-cache retention: journal index, eviction, concurrency, CLI."""

from __future__ import annotations

import json
import multiprocessing
import pickle

import pytest

from repro.cli import main
from repro.experiments import cache
from repro.serve.cache_index import CacheIndex, IndexEntry


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """A pristine cache directory for one test."""
    target = tmp_path / "plans"
    monkeypatch.setenv(cache.ENV_CACHE_DIR, str(target))
    monkeypatch.delenv(cache.ENV_NO_CACHE, raising=False)
    monkeypatch.delenv(cache.ENV_CACHE_MAX_MB, raising=False)
    cache.stats.reset()
    return target


def _store_blob(key: str, size: int) -> None:
    cache.store(key, b"x" * size)


class TestCacheIndex:
    def test_journal_order_is_recency(self, cache_dir):
        _store_blob("aa" + "0" * 62, 100)
        _store_blob("bb" + "0" * 62, 100)
        # touching the first key again makes it most recent
        hit, _ = cache.lookup("aa" + "0" * 62)
        assert hit
        entries = cache.index().entries()
        assert [e.key[:2] for e in entries] == ["bb", "aa"]

    def test_corrupt_journal_lines_are_skipped(self, cache_dir):
        _store_blob("aa" + "0" * 62, 100)
        journal = cache.index().journal_path
        with journal.open("a") as handle:
            handle.write("{torn line\n")
            handle.write('{"nokey": 1}\n')
            handle.write('{"key": 42, "size_bytes": 1}\n')
        entries = cache.index().entries()
        assert [e.key[:2] for e in entries] == ["aa"]

    def test_unjournaled_disk_files_sort_oldest(self, cache_dir):
        _store_blob("bb" + "0" * 62, 100)
        # a file that predates the journal (or whose record was lost)
        orphan = cache_dir / "aa" / ("aa" + "0" * 62 + ".pkl")
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(pickle.dumps(b"orphan"))
        entries = cache.index().entries()
        assert entries[0].key.startswith("aa")
        assert entries[0].seq == -1
        assert entries[1].key.startswith("bb")

    def test_journal_dropped_entries_require_disk_backing(self, cache_dir):
        _store_blob("aa" + "0" * 62, 100)
        _store_blob("bb" + "0" * 62, 100)
        # delete one entry file behind the index's back
        for path in cache_dir.rglob("aa*.pkl"):
            path.unlink()
        assert [e.key[:2] for e in cache.index().entries()] == ["bb"]

    def test_prune_evicts_lru_first(self, cache_dir):
        for stem in ("aa", "bb", "cc"):
            _store_blob(stem + "0" * 62, 1000)
        hit, _ = cache.lookup("aa" + "0" * 62)  # aa becomes most recent
        assert hit
        result = cache.index().prune(2 * 1024)
        assert result.evicted_count == 1
        survivors = {e.key[:2] for e in cache.index().entries()}
        assert survivors == {"cc", "aa"}  # bb was least recently used

    def test_prune_respects_keep_set(self, cache_dir):
        for stem in ("aa", "bb"):
            _store_blob(stem + "0" * 62, 1000)
        protected = "aa" + "0" * 62
        result = cache.index().prune(0, keep=frozenset((protected,)))
        assert result.evicted_count == 1
        assert [e.key for e in cache.index().entries()] == [protected]

    def test_prune_compacts_journal_before_unlink(self, cache_dir):
        for stem in ("aa", "bb", "cc"):
            _store_blob(stem + "0" * 62, 1000)
        cache.index().prune(1024)
        journal_keys = {
            json.loads(line)["key"][:2]
            for line in cache.index().journal_path.read_text().splitlines()
        }
        disk_keys = {p.stem[:2] for p in cache_dir.rglob("*.pkl")}
        assert journal_keys == disk_keys  # journal never references ghosts

    def test_compact_shrinks_journal(self, cache_dir):
        key = "aa" + "0" * 62
        _store_blob(key, 100)
        for _ in range(20):
            cache.lookup(key)
        index = cache.index()
        assert len(index.journal_path.read_text().splitlines()) > 10
        assert index.compact() == 1
        assert len(index.journal_path.read_text().splitlines()) == 1

    def test_entry_file_layout_matches_cache(self, cache_dir):
        key = "ab" + "0" * 62
        _store_blob(key, 10)
        index_path = CacheIndex(cache_dir)._entry_file(key)
        assert index_path.is_file()


class TestCapEnforcement:
    def test_store_evicts_past_cap(self, cache_dir, monkeypatch):
        monkeypatch.setenv(cache.ENV_CACHE_MAX_MB, "1")
        blob = 400 * 1024
        for stem in ("aa", "bb", "cc"):
            _store_blob(stem + "0" * 62, blob)
        # three ~0.4 MiB entries under a 1 MiB cap: the oldest must go
        assert cache.entry_count() == 2
        assert cache.total_bytes() <= 1024 * 1024
        assert cache.stats.evictions >= 1
        survivors = {e.key[:2] for e in cache.index().entries()}
        assert "cc" in survivors  # the entry just stored is never evicted

    def test_unset_cap_means_unbounded(self, cache_dir):
        assert cache.cache_max_bytes() is None
        for stem in ("aa", "bb", "cc", "dd"):
            _store_blob(stem + "0" * 62, 100_000)
        assert cache.entry_count() == 4

    def test_bogus_cap_values_ignored(self, cache_dir, monkeypatch):
        for bogus in ("nope", "-3", "0", ""):
            monkeypatch.setenv(cache.ENV_CACHE_MAX_MB, bogus)
            assert cache.cache_max_bytes() is None

    def test_clear_also_drops_journal(self, cache_dir):
        _store_blob("aa" + "0" * 62, 100)
        assert cache.index().journal_path.is_file()
        cache.clear()
        assert cache.entry_count() == 0
        assert not cache.index().journal_path.is_file()


def _hammer_worker(args: tuple[int, int]) -> dict[str, str]:
    """Fetch a fixed key set in a churned order; return key → sha of value.

    Runs in a separate process; the cache directory and size cap come in
    via the (inherited) environment, exactly like real pool workers.
    """
    import hashlib

    worker_id, rounds = args
    cache.stats.reset()
    digests: dict[str, str] = {}
    for round_no in range(rounds):
        for i in range(6):
            # deterministic per-worker interleaving, no RNG
            slot = (i + worker_id + round_no) % 6
            key = cache.make_key("hammer", slot=slot)
            value = cache.fetch(key, lambda: {"slot": slot, "blob": "x" * 300_000})
            digests[key] = hashlib.sha256(
                json.dumps(value, sort_keys=True).encode()
            ).hexdigest()
    return digests


class TestConcurrentHammer:
    def test_multiprocess_fetch_is_bit_identical(self, cache_dir, monkeypatch):
        monkeypatch.setenv(cache.ENV_CACHE_MAX_MB, "1")
        expected = {
            cache.make_key("hammer", slot=slot): slot for slot in range(6)
        }
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            results = pool.map(_hammer_worker, [(w, 5) for w in range(4)])
        # every process saw the same bytes for every key, every round
        merged: dict[str, set[str]] = {}
        for digests in results:
            for key, digest in digests.items():
                merged.setdefault(key, set()).add(digest)
        assert set(merged) == set(expected)
        assert all(len(d) == 1 for d in merged.values())
        # the index survived the stampede: replay works, every entry is
        # backed by a real file, and the journal parses line by line
        index = cache.index()
        entries = index.entries()
        assert all(index._entry_file(e.key).is_file() for e in entries)
        for line in index.journal_path.read_text().splitlines():
            record = json.loads(line)
            assert isinstance(record["key"], str)
        # values on disk still round-trip to the expected content
        for entry in entries:
            if entry.key in expected:
                hit, value = cache.lookup(entry.key)
                assert hit and value["slot"] == expected[entry.key]


class TestCacheCli:
    def test_stats(self, cache_dir, capsys):
        _store_blob("aa" + "0" * 62, 1000)
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and str(cache_dir) in out

    def test_prune(self, cache_dir, capsys):
        for stem in ("aa", "bb", "cc"):
            _store_blob(stem + "0" * 62, 100_000)
        assert main(["cache", "prune", "--max-mb", "0"]) == 0
        assert "pruned 3 entries" in capsys.readouterr().out
        assert cache.entry_count() == 0

    def test_prune_requires_max_mb(self, cache_dir, capsys):
        assert main(["cache", "prune"]) == 2
        assert "--max-mb is required" in capsys.readouterr().err

    def test_clear(self, cache_dir, capsys):
        _store_blob("aa" + "0" * 62, 1000)
        assert main(["cache", "clear"]) == 0
        assert "1 entries removed" in capsys.readouterr().out
        assert cache.entry_count() == 0


class TestIndexEntryShape:
    def test_prune_result_payload_roundtrip(self, cache_dir):
        _store_blob("aa" + "0" * 62, 1000)
        result = cache.prune(0)
        payload = result.to_payload()
        assert payload["evicted_count"] == 1
        assert payload["remaining_count"] == 0

    def test_index_entry_fields(self):
        entry = IndexEntry(key="k", size_bytes=3, seq=7)
        assert (entry.key, entry.size_bytes, entry.seq) == ("k", 3, 7)
