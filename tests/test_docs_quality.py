"""Documentation quality gates.

Every public module, class and function in the library must carry a
docstring — the deliverable is a library others adopt, and the docstring
coverage is part of the contract.  Private names (leading underscore) and
test scaffolding are exempt.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")[1:]):
            continue
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _public_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(member):
                    continue
                if not (member.__doc__ and member.__doc__.strip()):
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, f"{module.__name__}: missing docstrings: {undocumented}"


def test_repo_documents_exist():
    from pathlib import Path

    root = Path(repro.__file__).resolve().parents[2]
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = root / name
        assert path.exists() and path.stat().st_size > 1000, name
