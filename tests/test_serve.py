"""Planning-as-a-service: protocol, handlers, HTTP daemon, load generator."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request

import pytest

from repro.analyzer import Objective
from repro.analyzer.export import plan_to_dict
from repro.arch.spec import AcceleratorSpec
from repro.arch.units import kib
from repro.cli import main
from repro.manager import MemoryManager
from repro.nn.zoo import get_model
from repro.report import diagnostics
from repro.serve import loadgen, protocol
from repro.serve.handlers import execute
from repro.serve.protocol import ProtocolError, canonical_json, parse_plan_request
from repro.serve.server import ReproServer


class TestProtocol:
    def test_schema_id_pinned_to_diagnostics(self):
        assert protocol.SERVE_SCHEMA_ID == diagnostics.SERVE_SCHEMA_ID
        assert protocol.ENDPOINTS == diagnostics.SERVE_ENDPOINTS

    def test_defaults(self):
        request = parse_plan_request({"model": "ResNet18"})
        assert request.glb_kb == 64
        assert request.scheme == "het"
        assert request.prefetch is True

    def test_roundtrip_params(self):
        params = {"model": "MobileNet", "glb_kb": 128, "objective": "latency"}
        request = parse_plan_request(params)
        assert parse_plan_request(request.to_params()) == request

    @pytest.mark.parametrize(
        "params",
        [
            None,
            [],
            {},
            {"model": ""},
            {"model": 3},
            {"model": "MobileNet", "objektive": "accesses"},
            {"model": "MobileNet", "glb_kb": 0},
            {"model": "MobileNet", "glb_kb": True},
            {"model": "MobileNet", "glb_kb": "64"},
            {"model": "MobileNet", "objective": "speed"},
            {"model": "MobileNet", "scheme": "magic"},
            {"model": "MobileNet", "prefetch": "yes"},
            {"model": "MobileNet", "interlayer_mode": "eager"},
            {"model": "MobileNet", "dram_bandwidth_elems_per_cycle": -1},
            {"model": "MobileNet", "interlayer": True, "scheme": "hom"},
        ],
    )
    def test_bad_requests_rejected(self, params):
        with pytest.raises(ProtocolError) as excinfo:
            parse_plan_request(params)
        assert excinfo.value.code == "bad-request"

    def test_unknown_error_code_rejected(self):
        with pytest.raises(ValueError):
            ProtocolError("no-such-code", "boom")
        with pytest.raises(ValueError):
            protocol.error_response("plan", "no-such-code", "boom")

    def test_envelopes_validate(self):
        ok = protocol.ok_response("plan", {"plan": {}})
        err = protocol.error_response("plan", "bad-request", "nope")
        assert diagnostics.validate_serve_payload(ok) == []
        assert diagnostics.validate_serve_payload(err) == []

    def test_validator_rejects_drift(self):
        assert diagnostics.validate_serve_payload("not a dict")
        assert diagnostics.validate_serve_payload({"schema": "repro-serve/2"})
        bad_ok = protocol.ok_response("plan", {})
        bad_ok["error"] = {"code": "x", "message": "y"}
        assert diagnostics.validate_serve_payload(bad_ok)
        bad_err = protocol.error_response("plan", "internal", "boom")
        bad_err["error"] = {"code": ""}
        assert diagnostics.validate_serve_payload(bad_err)
        unknown_ok = protocol.ok_response("teleport", {})
        assert diagnostics.validate_serve_payload(unknown_ok)

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})


class TestHandlers:
    def test_plan_matches_direct_manager_call(self):
        status, envelope = execute("plan", {"model": "MobileNet", "glb_kb": 64})
        assert status == 200
        assert diagnostics.validate_serve_payload(envelope) == []
        manager = MemoryManager(AcceleratorSpec(glb_bytes=kib(64)))
        direct = manager.plan_cached(get_model("MobileNet"), Objective.ACCESSES)
        assert canonical_json(envelope["result"]["plan"]) == canonical_json(
            plan_to_dict(direct)
        )

    def test_plan_warm_request_hits_cache(self):
        params = {"model": "MobileNet", "glb_kb": 64}
        execute("plan", params)
        status, envelope = execute("plan", params)
        assert status == 200
        assert envelope["result"]["cache"]["hit"] is True
        assert len(envelope["result"]["cache"]["key"]) == 64

    def test_unknown_model_is_structured_404(self):
        status, envelope = execute("plan", {"model": "SkyNet"})
        assert status == 404
        assert envelope["error"]["code"] == "unknown-model"
        assert diagnostics.validate_serve_payload(envelope) == []

    def test_model_name_is_case_insensitive(self):
        status, envelope = execute("plan", {"model": "mobilenet", "glb_kb": 64})
        assert status == 200
        assert envelope["result"]["request"]["model"] == "MobileNet"

    def test_unknown_endpoint_is_structured_404(self):
        status, envelope = execute("teleport", None)
        assert status == 404
        assert envelope["error"]["code"] == "unknown-endpoint"
        assert diagnostics.validate_serve_payload(envelope) == []

    def test_unknown_policy_family_is_bad_request(self):
        status, envelope = execute(
            "plan", {"model": "MobileNet", "glb_kb": 64, "scheme": "hom(px)"}
        )
        assert status == 400
        assert envelope["error"]["code"] == "bad-request"
        assert diagnostics.validate_serve_payload(envelope) == []

    def test_models_lists_zoo(self):
        status, envelope = execute("models")
        assert status == 200
        names = [m["name"] for m in envelope["result"]["models"]]
        assert "ResNet18" in names and "MobileNet" in names

    def test_health_and_stats(self):
        status, envelope = execute("health")
        assert status == 200 and envelope["result"]["status"] == "ok"
        status, envelope = execute("stats")
        assert status == 200
        assert set(envelope["result"]["cache"]["counters"]) == {
            "hits", "misses", "stores", "evictions",
        }

    def test_explain_and_simulate(self):
        status, envelope = execute("explain", {"model": "MobileNet", "glb_kb": 64})
        assert status == 200
        assert envelope["result"]["explain"]["layers"]
        status, envelope = execute("simulate", {"model": "MobileNet", "glb_kb": 64})
        assert status == 200
        assert set(envelope["result"]["baselines"]) == {
            "sa_25_75", "sa_50_50", "sa_75_25",
        }


@pytest.fixture(scope="module")
def daemon():
    """An in-process daemon on an ephemeral port, shared by HTTP tests."""
    server = ReproServer("127.0.0.1", 0, jobs=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.port}"
    server.shutdown()
    thread.join()
    server.close()


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=60) as response:
            return int(response.status), json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return int(exc.code), json.loads(exc.read())


def _post(url: str, body: bytes) -> tuple[int, dict]:
    request = urllib.request.Request(url, data=body, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return int(response.status), json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return int(exc.code), json.loads(exc.read())


class TestHttpDaemon:
    def test_health(self, daemon):
        status, envelope = _get(f"{daemon}/health")
        assert status == 200 and envelope["ok"] is True
        assert diagnostics.validate_serve_payload(envelope) == []

    def test_plan_and_warm_hit(self, daemon):
        body = json.dumps({"model": "MobileNet", "glb_kb": 64}).encode()
        status, envelope = _post(f"{daemon}/plan", body)
        assert status == 200
        assert diagnostics.validate_serve_payload(envelope) == []
        status, warm = _post(f"{daemon}/plan", body)
        assert warm["result"]["cache"]["hit"] is True

    def test_malformed_json_is_400_envelope(self, daemon):
        status, envelope = _post(f"{daemon}/plan", b"{not json")
        assert status == 400
        assert envelope["error"]["code"] == "invalid-json"
        assert diagnostics.validate_serve_payload(envelope) == []

    def test_unknown_endpoint_is_404_envelope(self, daemon):
        status, envelope = _get(f"{daemon}/nonsense")
        assert status == 404
        assert envelope["error"]["code"] == "unknown-endpoint"
        assert diagnostics.validate_serve_payload(envelope) == []

    def test_wrong_method_is_405_envelope(self, daemon):
        status, envelope = _get(f"{daemon}/plan")
        assert status == 405
        assert envelope["error"]["code"] == "bad-request"
        status, envelope = _post(f"{daemon}/stats", b"{}")
        assert status == 405
        assert envelope["error"]["code"] == "bad-request"

    def test_unknown_model_http(self, daemon):
        status, envelope = _post(
            f"{daemon}/plan", json.dumps({"model": "SkyNet"}).encode()
        )
        assert status == 404
        assert envelope["error"]["code"] == "unknown-model"


class TestGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(
            os.environ,
            REPRO_CACHE_DIR=str(tmp_path / "cache"),
            PYTHONPATH=os.pathsep.join(filter(None, ["src", os.environ.get("PYTHONPATH")])),
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            announce = proc.stdout.readline()
            url = announce.split()[-2]
            status, envelope = _post(
                f"{url}/plan",
                json.dumps({"model": "MobileNet", "glb_kb": 32}).encode(),
            )
            assert status == 200 and envelope["ok"]
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
        # shutdown compacted the journal: one line per live entry
        from repro.serve.cache_index import CacheIndex

        index = CacheIndex(tmp_path / "cache")
        journal_lines = index.journal_path.read_text().splitlines()
        assert len(journal_lines) == len(list(index.iter_keys()))


class TestLoadGenerator:
    def test_request_mix_is_deterministic(self):
        first = loadgen.request_mix(7, 16)
        second = loadgen.request_mix(7, 16)
        assert first == second
        assert loadgen.request_mix(8, 16) != first
        assert {job.endpoint for job in first} <= {"plan", "explain", "simulate"}

    def test_bench_serve_in_process(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        report = loadgen.bench_serve(
            clients=2,
            requests=8,
            seed=1,
            models=("MobileNet",),
            glb_kb=(64,),
            out=out,
        )
        assert report.error_count == 0
        assert report.byte_identical is True
        record = json.loads(out.read_text())
        assert record["schema"] == 1 and record["kind"] == "serve"
        assert record["requests"] == 8
        assert set(record["latency_seconds"]) == {"p50", "p99", "mean"}
        # the same seed over a warm cache must hit nearly always
        warm = loadgen.bench_serve(
            clients=2,
            requests=8,
            seed=1,
            models=("MobileNet",),
            glb_kb=(64,),
            out=None,
        )
        assert warm.hit_rate >= 0.9

    def test_bench_cli(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        assert (
            main(
                [
                    "bench", "serve",
                    "--clients", "2",
                    "--requests", "6",
                    "--models", "MobileNet",
                    "--glb", "64",
                    "--out", str(out),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "byte-identical" in printed and "True" in printed
        assert json.loads(out.read_text())["errors"] == 0

    def test_percentile_edges(self):
        assert loadgen._percentile([], 0.5) == 0.0
        assert loadgen._percentile([1.0], 0.99) == 1.0
        assert loadgen._percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
