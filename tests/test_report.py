"""Table rendering and CSV export."""

import pytest

from repro.report import Table, series_table


class TestTable:
    def _table(self):
        t = Table(title="T", headers=["a", "b"])
        t.add_row("x", 1)
        t.add_row("yy", 2.5)
        return t

    def test_render_contains_everything(self):
        text = self._table().render()
        assert "T" in text
        assert "a" in text and "b" in text
        assert "yy" in text and "2.50" in text

    def test_alignment(self):
        lines = self._table().render().splitlines()
        data = [l for l in lines if "|" in l]
        assert len({l.index("|") for l in data}) == 1

    def test_row_arity_checked(self):
        t = Table(title="T", headers=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("only-one")

    def test_csv(self):
        csv = self._table().to_csv()
        assert csv.splitlines()[0] == "a,b"
        assert "yy,2.50" in csv

    def test_save_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        self._table().save_csv(path)
        assert path.read_text().startswith("a,b")

    def test_empty_table_renders(self):
        assert "T" in Table(title="T", headers=["a"]).render()


class TestSeriesTable:
    def test_build(self):
        t = series_table("S", "x", [1, 2], {"y": [10, 20], "z": [30, 40]})
        assert t.headers == ["x", "y", "z"]
        assert t.rows == [[1, 10, 30], [2, 20, 40]]
