"""Acceptance gate: every paper network verifies under every paper GLB.

The full matrix (six zoo networks × five Table 3 GLB sizes) is planned
with the heterogeneous scheme plus inter-layer reuse — the configuration
the paper's headline results use — and must produce zero diagnostics.
The cheaper schemes (homogeneous, joint-DP inter-layer, latency
objective) are spot-checked on a subset to keep the suite fast.
"""

from __future__ import annotations

import pytest

from repro.analyzer import Objective
from repro.arch import kib
from repro.arch.spec import PAPER_GLB_SIZES, AcceleratorSpec
from repro.nn.zoo import PAPER_MODEL_NAMES, get_model
from repro.verify import verify_network

MODEL_NAMES = tuple(sorted(PAPER_MODEL_NAMES))
GLB_SIZES_KB = tuple(size // kib(1) for size in PAPER_GLB_SIZES)


@pytest.mark.parametrize("glb_kb", GLB_SIZES_KB)
@pytest.mark.parametrize("name", MODEL_NAMES)
def test_het_interlayer_matrix_verifies(name: str, glb_kb: int) -> None:
    outcome = verify_network(
        get_model(name),
        AcceleratorSpec(glb_bytes=kib(glb_kb)),
        interlayer=True,
    )
    assert outcome.ok, outcome.report.render()
    assert outcome.report.checks > 0


@pytest.mark.parametrize("name", ("ResNet18", "MobileNet"))
def test_homogeneous_scheme_verifies(name: str) -> None:
    outcome = verify_network(
        get_model(name), AcceleratorSpec(glb_bytes=kib(256)), scheme="hom"
    )
    assert outcome.ok, outcome.report.render()


@pytest.mark.parametrize("name", ("MobileNetV2", "GoogLeNet"))
def test_joint_interlayer_mode_verifies(name: str) -> None:
    outcome = verify_network(
        get_model(name),
        AcceleratorSpec(glb_bytes=kib(64)),
        interlayer=True,
        interlayer_mode="joint",
    )
    assert outcome.ok, outcome.report.render()


@pytest.mark.parametrize("name", ("MnasNet", "EfficientNetB0"))
def test_latency_objective_verifies(name: str) -> None:
    outcome = verify_network(
        get_model(name),
        AcceleratorSpec(glb_bytes=kib(128)),
        objective=Objective.LATENCY,
    )
    assert outcome.ok, outcome.report.render()
