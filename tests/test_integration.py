"""End-to-end integration: the full Fig. 4 pipeline on real models.

These tests exercise the library the way a user (or the paper's
evaluation) would: model description file → memory manager → execution
plan → validation simulation → export, plus cross-cutting consistency
between independent subsystems.
"""

import json

import pytest

from repro import AcceleratorSpec, Objective, plan_heterogeneous
from repro.analyzer import plan_to_dict, save_plan
from repro.arch import kib
from repro.energy import plan_energy
from repro.manager import MemoryManager
from repro.nn import load_model, save_model
from repro.nn.zoo import get_model, paper_models
from repro.scalesim import lower_model, model_to_topology_csv
from repro.sim import crosscheck_plan


class TestFullPipeline:
    """Model JSON -> plan -> simulate -> export, end to end."""

    def test_json_to_validated_plan(self, tmp_path):
        # 1. Export a model description (the Fig. 4 input artifact).
        model_path = tmp_path / "resnet18.json"
        save_model(get_model("ResNet18"), model_path)

        # 2. Plan it through the manager facade.
        manager = MemoryManager(AcceleratorSpec(glb_bytes=kib(64)))
        plan = manager.plan_from_file(model_path)

        # 3. Execute the plan in the step-level simulator.
        check, sim = crosscheck_plan(plan)
        assert check.traffic_matches
        assert check.latency_rel_error < 1e-5

        # 4. Export the compiler schedule and verify its totals agree
        #    with the simulation, closing the loop.
        plan_path = tmp_path / "plan.json"
        save_plan(plan, plan_path)
        exported = json.loads(plan_path.read_text())
        assert exported["totals"]["accesses_bytes"] == (
            sim.dram_total_elems * plan.spec.bytes_per_elem
        )

    def test_plan_beats_baseline_on_both_metrics_for_dw_models(self):
        manager = MemoryManager(AcceleratorSpec(glb_bytes=kib(64)))
        comparison = manager.compare_with_baseline(
            get_model("MnasNet"), Objective.LATENCY
        )
        assert comparison.accesses_reduction_pct > 0
        assert comparison.latency_reduction_pct > 0


class TestAllModelsAllSizes:
    """The paper's full configuration matrix stays feasible and sane."""

    @pytest.mark.parametrize("glb_kb", [64, 128, 256, 512, 1024])
    def test_every_model_plans(self, glb_kb):
        spec = AcceleratorSpec(glb_bytes=kib(glb_kb))
        for model in paper_models():
            plan = plan_heterogeneous(model, spec)
            assert len(plan.assignments) == len(model)
            assert plan.max_memory_bytes <= spec.glb_bytes
            # Off-chip traffic can never beat reading weights once.
            assert plan.total_accesses_bytes >= model.total_weight_elems

    def test_accesses_nonincreasing_in_glb(self):
        for model in paper_models():
            previous = None
            for glb_kb in (64, 128, 256, 512, 1024):
                plan = plan_heterogeneous(model, AcceleratorSpec(glb_bytes=kib(glb_kb)))
                if previous is not None:
                    assert plan.total_accesses_bytes <= previous * 1.001, model.name
                previous = plan.total_accesses_bytes


class TestCrossSubsystemConsistency:
    def test_macs_agree_between_nn_and_scalesim(self):
        """The GEMM lowering must preserve the MAC count exactly."""
        for model in paper_models():
            lowered = lower_model(model)
            assert sum(w.macs for w in lowered) == model.total_macs

    def test_topology_csv_row_count(self):
        for model in paper_models():
            csv = model_to_topology_csv(model)
            assert csv.count("\n") == len(model) + 1

    def test_energy_ordering_follows_accesses(self):
        """Same model, same spec: fewer accesses -> less energy."""
        model = get_model("ResNet18")
        small = plan_heterogeneous(model, AcceleratorSpec(glb_bytes=kib(64)))
        large = plan_heterogeneous(model, AcceleratorSpec(glb_bytes=kib(1024)))
        if small.total_accesses_bytes > large.total_accesses_bytes:
            assert plan_energy(small).total_pj > plan_energy(large).total_pj

    def test_model_json_preserves_plan_results(self, tmp_path):
        """Planning a round-tripped model gives identical results."""
        spec = AcceleratorSpec(glb_bytes=kib(64))
        original = get_model("MobileNetV2")
        path = tmp_path / "m.json"
        save_model(original, path)
        clone = load_model(path)
        plan_a = plan_heterogeneous(original, spec)
        plan_b = plan_heterogeneous(clone, spec)
        assert plan_a.total_accesses_bytes == plan_b.total_accesses_bytes
        assert plan_a.total_latency_cycles == plan_b.total_latency_cycles
        assert [a.label for a in plan_a] == [b.label for b in plan_b]
