"""Unit helpers and accelerator-spec validation."""

import pytest

from repro.arch import (
    DEFAULT_SPEC,
    PAPER_GLB_SIZES,
    AcceleratorSpec,
    ceil_div,
    kib,
    mib,
    pct_change,
    reduction_pct,
    to_kib,
    to_mib,
)


class TestUnits:
    def test_kib_mib(self):
        assert kib(1) == 1024
        assert kib(64) == 65536
        assert mib(1) == 1024 * 1024
        assert to_kib(2048) == 2.0
        assert to_mib(mib(3)) == 3.0

    def test_ceil_div_exact(self):
        assert ceil_div(8, 4) == 2

    def test_ceil_div_rounds_up(self):
        assert ceil_div(9, 4) == 3
        assert ceil_div(1, 4) == 1

    def test_ceil_div_zero_dividend(self):
        assert ceil_div(0, 5) == 0

    def test_ceil_div_rejects_bad_input(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    def test_pct_change_reduction(self):
        assert pct_change(50, 100) == -50.0
        assert reduction_pct(50, 100) == 50.0

    def test_pct_change_zero_reference(self):
        assert pct_change(0, 0) == 0.0
        assert pct_change(5, 0) == float("inf")


class TestAcceleratorSpec:
    def test_paper_defaults(self):
        assert DEFAULT_SPEC.pe_rows == 16
        assert DEFAULT_SPEC.pe_cols == 16
        assert DEFAULT_SPEC.ops_per_cycle == 512
        assert DEFAULT_SPEC.macs_per_cycle == 256.0
        assert DEFAULT_SPEC.data_width_bits == 8
        assert DEFAULT_SPEC.dram_bandwidth_elems_per_cycle == 16.0

    def test_paper_glb_sizes(self):
        assert PAPER_GLB_SIZES == (kib(64), kib(128), kib(256), kib(512), kib(1024))

    def test_bytes_per_elem(self):
        assert AcceleratorSpec(data_width_bits=8).bytes_per_elem == 1
        assert AcceleratorSpec(data_width_bits=16).bytes_per_elem == 2
        assert AcceleratorSpec(data_width_bits=32).bytes_per_elem == 4

    def test_glb_elems_scales_with_width(self):
        base = AcceleratorSpec(glb_bytes=kib(64))
        wide = base.with_data_width(32)
        assert base.glb_elems == kib(64)
        assert wide.glb_elems == kib(64) // 4

    def test_with_glb(self):
        spec = DEFAULT_SPEC.with_glb(kib(512))
        assert spec.glb_bytes == kib(512)
        assert spec.ops_per_cycle == DEFAULT_SPEC.ops_per_cycle

    def test_transfer_cycles(self):
        spec = AcceleratorSpec()
        # 16 elements/cycle at 1 byte each = 16 bytes/cycle.
        assert spec.transfer_cycles(160) == 10.0

    def test_transfer_cycles_scales_with_width(self):
        spec = AcceleratorSpec(data_width_bits=32)
        # 16 elements/cycle at 4 bytes = 64 bytes/cycle.
        assert spec.transfer_cycles(640) == 10.0

    def test_transfer_cycles_rejects_negative(self):
        with pytest.raises(ValueError):
            AcceleratorSpec().transfer_cycles(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pe_rows": 0},
            {"ops_per_cycle": 0},
            {"data_width_bits": 12},
            {"data_width_bits": 0},
            {"glb_bytes": 0},
            {"dram_bandwidth_elems_per_cycle": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AcceleratorSpec(**kwargs)

    def test_num_pes(self):
        assert AcceleratorSpec(pe_rows=8, pe_cols=4).num_pes == 32

    def test_validation_reports_every_invalid_field(self):
        with pytest.raises(ValueError) as excinfo:
            AcceleratorSpec(
                pe_rows=0,
                ops_per_cycle=-1,
                data_width_bits=12,
                glb_bytes=0,
                dram_bandwidth_elems_per_cycle=-2.0,
            )
        message = str(excinfo.value)
        assert message.startswith("invalid AcceleratorSpec: ")
        for field in (
            "PE array dimensions",
            "ops_per_cycle",
            "data_width_bits",
            "glb_bytes",
            "dram_bandwidth_elems_per_cycle",
        ):
            assert field in message
        # One aggregated error, not just the first violation.
        assert message.count(";") == 4

    def test_with_dram(self):
        from repro.dram import DEFAULT_DDR4_SPEC

        assert DEFAULT_SPEC.dram is None
        banked = DEFAULT_SPEC.with_dram(DEFAULT_DDR4_SPEC)
        assert banked.dram is DEFAULT_DDR4_SPEC
        assert banked.with_dram(None).dram is None
        # The flat constant equals the banked device's peak at 8-bit data.
        assert (
            DEFAULT_DDR4_SPEC.peak_bytes_per_cycle
            == DEFAULT_SPEC.dram_bandwidth_bytes_per_cycle
        )
